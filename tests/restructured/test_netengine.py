"""The socket-backed task engine: framing, host parsing, bitwise runs,
and the chaos suite.

The acceptance invariant mirrors the data-plane suite's: whatever the
transport does — frames over loopback TCP, a killed daemon, a
connection dropped mid-result, a heartbeat gone silent — the combined
solution stays *bitwise identical* to the sequential application's,
and every recovery is visible in both the FaultReport and the trace.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import time
import warnings

import numpy as np
import pytest

from repro.restructured import (
    WorkerDaemon,
    parse_hosts,
    run_multiprocessing,
    shutdown_pool,
)
from repro.restructured.netengine import (
    _DEADLINE_GRACE,
    FrameError,
    HostSpec,
    _DaemonLink,
    _FrameDecoder,
    _TimerWheel,
    arm_heartbeat_deadline,
    recv_frame,
    send_frame,
)
from repro.trace import TraceAnalysis, TraceRecorder

LEVEL = 2
TOL = 1.0e-3


@pytest.fixture(autouse=True)
def fresh_pool_state():
    """Each test starts and ends without a shared pool."""
    shutdown_pool()
    yield
    shutdown_pool()


def _run(**kw):
    kw.setdefault("root", 2)
    kw.setdefault("level", LEVEL)
    kw.setdefault("tol", TOL)
    kw.setdefault("processes", 2)
    return run_multiprocessing(**kw)


@pytest.fixture(scope="module")
def pickle_combined():
    """The fork-pool pickle path's result — the equality reference."""
    result = run_multiprocessing(root=2, level=LEVEL, tol=TOL, processes=2)
    shutdown_pool()
    return result.combined


@pytest.fixture()
def local_daemon():
    """One in-process WorkerDaemon on an OS-assigned loopback port,
    served from a thread — the ``tcp://`` dial target of the tests."""
    daemon = WorkerDaemon(port=0, capacity=1, heartbeat_interval=0.2)
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    yield daemon
    daemon.stop()
    thread.join(timeout=10.0)
    assert not thread.is_alive()


# ----------------------------------------------------------------------
# the wire protocol
# ----------------------------------------------------------------------
class TestFraming:
    def test_roundtrip(self):
        a, b = socket.socketpair()
        try:
            payload = {"key": (3, 1), "blob": np.arange(100.0)}
            sent, _ = send_frame(a, "result", payload)
            frame = recv_frame(b)
            assert frame is not None
            kind, data, received, _ = frame
            assert kind == "result"
            assert data["key"] == (3, 1)
            assert np.array_equal(data["blob"], payload["blob"])
            assert sent == received > 8
        finally:
            a.close()
            b.close()

    def test_clean_eof_between_frames_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_eof_mid_frame_raises(self):
        a, b = socket.socketpair()
        try:
            # a valid header promising 1000 body bytes, then the peer dies
            import struct

            a.sendall(struct.pack("!4sI", b"RPRO", 1000) + b"x" * 10)
            a.close()
            with pytest.raises(FrameError, match="mid-frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_bad_magic_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"HTTP" + b"\x00" * 4)
            with pytest.raises(FrameError, match="magic"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_oversize_frame_rejected(self):
        import struct

        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack("!4sI", b"RPRO", (1 << 30) + 1))
            with pytest.raises(FrameError, match="cap"):
                recv_frame(b)
        finally:
            a.close()
            b.close()


class TestParseHosts:
    def test_bare_localhost_spawns_one(self):
        assert parse_hosts("localhost") == (HostSpec("127.0.0.1", spawn=1),)

    def test_localhost_with_count(self):
        (spec,) = parse_hosts("localhost:3")
        assert spec.spawn == 3 and spec.local

    def test_tcp_entry_dials(self):
        (spec,) = parse_hosts("tcp://node7:9123")
        assert spec == HostSpec("node7", port=9123)
        assert not spec.local

    def test_mixed_entries(self):
        specs = parse_hosts("localhost:2, tcp://10.0.0.7:9000")
        assert specs[0].spawn == 2
        assert specs[1].port == 9000

    @pytest.mark.parametrize(
        "bad",
        ["remotehost:2", "tcp://noport", "tcp://h:abc", "localhost:0",
         "localhost:x", ",,"],
    )
    def test_rejects_bad_entries(self, bad):
        with pytest.raises(ValueError):
            parse_hosts(bad)


# ----------------------------------------------------------------------
# the reactor's building blocks
# ----------------------------------------------------------------------
def _frame_bytes(kind, data):
    body = pickle.dumps((kind, data), protocol=pickle.HIGHEST_PROTOCOL)
    return struct.pack("!4sI", b"RPRO", len(body)) + body


class TestFrameDecoder:
    def test_two_frames_in_one_feed(self):
        wire = _frame_bytes("heartbeat", {"pid": 1}) + _frame_bytes(
            "result", {"key": (2, 0)}
        )
        decoder = _FrameDecoder()
        frames = decoder.feed(wire)
        assert [f[0] for f in frames] == ["heartbeat", "result"]
        assert frames[1][1]["key"] == (2, 0)
        assert frames[0][2] == len(_frame_bytes("heartbeat", {"pid": 1}))
        assert not decoder.mid_frame

    def test_byte_by_byte_reassembly(self):
        wire = _frame_bytes("result", {"key": (3, 1), "blob": np.arange(50.0)})
        decoder = _FrameDecoder()
        frames = []
        for i in range(len(wire)):
            frames.extend(decoder.feed(wire[i : i + 1]))
            if i < len(wire) - 1:
                assert decoder.mid_frame  # EOF here would truncate
        (frame,) = frames
        kind, data, nbytes, _ = frame
        assert kind == "result"
        assert np.array_equal(data["blob"], np.arange(50.0))
        assert nbytes == len(wire)
        assert not decoder.mid_frame

    def test_bad_magic_raises(self):
        decoder = _FrameDecoder()
        with pytest.raises(FrameError, match="magic"):
            decoder.feed(b"HTTP/1.1")

    def test_oversize_frame_rejected(self):
        decoder = _FrameDecoder()
        with pytest.raises(FrameError, match="cap"):
            decoder.feed(struct.pack("!4sI", b"RPRO", (1 << 30) + 1))

    def test_describe_partial_names_the_break_point(self):
        decoder = _FrameDecoder()
        decoder.feed(struct.pack("!4sI", b"RPRO", 1000) + b"x" * 10)
        assert decoder.mid_frame
        assert "10/1000 body bytes" in decoder.describe_partial()


class TestTimerWheel:
    def test_fires_in_due_order_under_injected_clock(self):
        clock = {"t": 0.0}
        wheel = _TimerWheel(clock=lambda: clock["t"])
        fired = []
        wheel.schedule(2.0, lambda: fired.append("late"))
        wheel.schedule(1.0, lambda: fired.append("early"))
        assert wheel.next_timeout() == pytest.approx(1.0)
        assert wheel.fire_due() == 0
        clock["t"] = 1.5
        assert wheel.fire_due() == 1
        assert fired == ["early"]
        clock["t"] = 2.5
        wheel.fire_due()
        assert fired == ["early", "late"]
        assert len(wheel) == 0
        assert wheel.next_timeout() is None

    def test_equal_deadlines_fire_in_schedule_order(self):
        clock = {"t": 0.0}
        wheel = _TimerWheel(clock=lambda: clock["t"])
        fired = []
        for name in ("a", "b", "c"):
            wheel.schedule(1.0, lambda name=name: fired.append(name))
        clock["t"] = 1.0
        wheel.fire_due()
        assert fired == ["a", "b", "c"]


class TestHeartbeatDeadline:
    """Satellite of the reactor rewrite: heartbeat-silence detection is
    now a timer on the wheel reading ``link.last_frame`` from the same
    thread that writes it — assert its conviction logic with an
    injected clock, no sockets and no wall time involved."""

    def _link(self, clock):
        link = _DaemonLink("d0", spawned=True)
        link.alive = True
        link.last_frame = clock["t"]
        return link

    def test_convicts_silent_link_with_jobs_in_flight(self):
        clock = {"t": 0.0}
        wheel = _TimerWheel(clock=lambda: clock["t"])
        link = self._link(clock)
        link.inflight[(2, 0)] = object()
        convicted = []
        arm_heartbeat_deadline(wheel, link, 1.0, convicted.append)
        clock["t"] = 1.0 + 2 * _DEADLINE_GRACE
        wheel.fire_due()
        assert convicted == [link]

    def test_frames_postpone_the_deadline(self):
        clock = {"t": 0.0}
        wheel = _TimerWheel(clock=lambda: clock["t"])
        link = self._link(clock)
        link.inflight[(2, 0)] = object()
        convicted = []
        arm_heartbeat_deadline(wheel, link, 1.0, convicted.append)
        # a heartbeat lands just before the deadline: the watch re-arms
        # at last_frame + timeout instead of convicting
        clock["t"] = 0.9
        link.last_frame = 0.9
        clock["t"] = 1.0 + 2 * _DEADLINE_GRACE
        wheel.fire_due()
        assert convicted == []
        clock["t"] = 1.9 + 2 * _DEADLINE_GRACE
        wheel.fire_due()
        assert convicted == [link]

    def test_idle_silence_is_not_a_hang(self):
        clock = {"t": 0.0}
        wheel = _TimerWheel(clock=lambda: clock["t"])
        link = self._link(clock)  # nothing in flight: owes no result
        convicted = []
        arm_heartbeat_deadline(wheel, link, 1.0, convicted.append)
        clock["t"] = 10.0
        wheel.fire_due()
        assert convicted == []
        assert len(wheel) == 1  # still watching, re-armed

    def test_stale_epoch_watch_is_void(self):
        clock = {"t": 0.0}
        wheel = _TimerWheel(clock=lambda: clock["t"])
        link = self._link(clock)
        link.inflight[(2, 0)] = object()
        convicted = []
        arm_heartbeat_deadline(wheel, link, 1.0, convicted.append)
        link.epoch += 1  # the connection was replaced: old watch is void
        clock["t"] = 5.0
        wheel.fire_due()
        assert convicted == []
        assert len(wheel) == 0  # and it does not re-arm


class TestReactorInvariants:
    def test_no_sleep_outside_worker_daemon(self):
        """The dispatch loop never sleeps: every ``time.sleep`` in the
        module belongs to the daemon side (fault injection and drain),
        none to the master's reactor."""
        import ast
        import inspect

        from repro.restructured import netengine

        sleeps = []

        class Visitor(ast.NodeVisitor):
            def __init__(self):
                self.stack = []

            def visit_ClassDef(self, node):
                self.stack.append(node.name)
                self.generic_visit(node)
                self.stack.pop()

            def visit_Call(self, node):
                f = node.func
                if (
                    isinstance(f, ast.Attribute)
                    and f.attr == "sleep"
                    and isinstance(f.value, ast.Name)
                    and f.value.id == "time"
                ):
                    sleeps.append(tuple(self.stack))
                self.generic_visit(node)

        Visitor().visit(ast.parse(inspect.getsource(netengine)))
        assert sleeps, "expected the daemon's fault-injection sleeps"
        assert all(s and s[0] == "WorkerDaemon" for s in sleeps), (
            f"time.sleep outside WorkerDaemon: {sleeps}"
        )

    def test_master_adds_no_threads(self, pickle_combined):
        """One selector, zero reader threads: a socket run leaves the
        master's thread count exactly where it found it."""
        samples = []
        stop = threading.Event()

        def sample():
            while not stop.wait(0.02):
                samples.append(threading.active_count())

        before = threading.active_count()
        sampler = threading.Thread(target=sample, daemon=True)
        sampler.start()
        try:
            result = _run(engine="socket")
        finally:
            stop.set()
            sampler.join(timeout=5.0)
        assert np.array_equal(result.combined, pickle_combined)
        assert samples
        assert max(samples) <= before + 1  # + the sampler itself


# ----------------------------------------------------------------------
# fault-free runs through the engines
# ----------------------------------------------------------------------
class TestSocketRun:
    def test_bitwise_identical_to_pool(self, pickle_combined):
        recorder = TraceRecorder()
        result = _run(engine="socket", hosts="localhost:2", trace=recorder)
        assert np.array_equal(result.combined, pickle_combined)
        assert result.engine == "socket"
        assert result.daemons == 2
        assert result.faults == 0
        assert result.net_bytes_sent > 0
        assert result.net_bytes_received > result.net_bytes_sent
        analysis = TraceAnalysis.from_recorder(recorder)
        assert (
            analysis.network_bytes
            == result.net_bytes_sent + result.net_bytes_received
        )
        assert analysis.n_reconnects == 0
        assert any("network:" in line for line in analysis.report_lines())

    def test_default_hosts_follow_processes(self):
        result = _run(engine="socket")
        assert result.daemons == 2
        assert result.hosts == "localhost:2"

    def test_shm_data_plane_over_spawned_daemons(self, pickle_combined):
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            result = _run(engine="socket", data_plane="shm")
            assert np.array_equal(result.combined, pickle_combined)
            assert result.shm_payloads == result.n_workers
            assert result.shm_fallbacks == 0
            audit = result.data_plane_audit
            assert audit is not None and audit.leaked == 0

    def test_dialed_daemon_never_gets_leases(self, local_daemon, pickle_combined):
        # a tcp:// daemon is not known host-local: shm must fall back
        # to pickle framing per payload, bitwise identically
        result = _run(
            engine="socket",
            data_plane="shm",
            hosts=f"tcp://127.0.0.1:{local_daemon.port}",
        )
        assert np.array_equal(result.combined, pickle_combined)
        assert result.shm_payloads == 0
        assert result.shm_fallbacks == result.n_workers
        assert result.data_plane_audit.leaked == 0


class TestTaskEngineRun:
    def test_bitwise_identical_to_pool(self, pickle_combined):
        result = _run(engine="task")
        assert result.engine == "task"
        assert np.array_equal(result.combined, pickle_combined)

    def test_task_engine_rejects_faults(self):
        with pytest.raises(ValueError, match="engine='task'"):
            _run(engine="task", faults="crash@2,0")

    def test_task_engine_rejects_shm(self):
        with pytest.raises(ValueError, match="engine='task'"):
            _run(engine="task", data_plane="shm")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            _run(engine="mpi")

    def test_hosts_require_socket_engine(self):
        with pytest.raises(ValueError, match="hosts requires"):
            _run(hosts="localhost:2")


# ----------------------------------------------------------------------
# the chaos suite
# ----------------------------------------------------------------------
class TestChaos:
    def test_daemon_kill_mid_job(self, pickle_combined):
        """A crash rule kills the whole daemon process unannounced; the
        master convicts via connection EOF, respawns, re-dispatches."""
        recorder = TraceRecorder()
        result = _run(
            engine="socket", faults="crash@2,0", trace=recorder
        )
        assert np.array_equal(result.combined, pickle_combined)
        assert result.faults == 1
        assert result.recovered == 1
        assert result.reconnects == 1
        (event,) = result.fault_events
        assert event.kind == "crash"
        assert event.key == (2, 0)
        assert event.detected_by == "connection"
        analysis = TraceAnalysis.from_recorder(recorder)
        assert analysis.n_reconnects == 1
        reconnect = next(
            e for e in recorder.events() if e.kind == "reconnect"
        )
        assert reconnect.data["reason"] == "crash"

    def test_daemon_kill_under_shm(self, pickle_combined):
        """The killed daemon's lease is revoked (the writer is dead by
        construction), the retry gets a fresh lease, nothing leaks."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            result = _run(
                engine="socket", data_plane="shm", faults="crash@2,0"
            )
            assert np.array_equal(result.combined, pickle_combined)
            assert result.faults == 1
            audit = result.data_plane_audit
            assert audit.reaped >= 1
            assert audit.leaked == 0

    def test_connection_drop_during_result_transfer(
        self, local_daemon, pickle_combined
    ):
        """The daemon truncates a result frame and hard-closes (RST):
        a mid-frame EOF, convicted as a crash, recovered on re-dial."""
        local_daemon._drop_result_keys.add((2, 0))
        recorder = TraceRecorder()
        result = _run(
            engine="socket",
            hosts=f"tcp://127.0.0.1:{local_daemon.port}",
            trace=recorder,
        )
        assert np.array_equal(result.combined, pickle_combined)
        assert result.faults >= 1
        assert result.reconnects >= 1
        assert any(
            e.kind == "crash" and e.detected_by == "connection"
            for e in result.fault_events
        )
        assert (2, 0) in result.recovered_keys
        assert not local_daemon._drop_result_keys

    def test_heartbeat_silence_past_deadline(self, pickle_combined):
        """A daemon that stops talking while a job is in flight is a
        hang: detected by heartbeat timeout, replaced, re-dispatched."""
        # beats every 30s (never, at test scale) against a 1.2s timeout:
        # the only liveness signal left is result frames themselves
        daemon = WorkerDaemon(port=0, capacity=1, heartbeat_interval=30.0)
        thread = threading.Thread(target=daemon.serve_forever, daemon=True)
        thread.start()
        try:
            recorder = TraceRecorder()
            result = _run(
                engine="socket",
                hosts=f"tcp://127.0.0.1:{daemon.port}",
                faults="hang@2,0:seconds=45",
                trace=recorder,
                engine_options={"heartbeat_timeout": 1.2},
            )
            assert np.array_equal(result.combined, pickle_combined)
            assert result.faults == 1
            assert result.reconnects == 1
            (event,) = result.fault_events
            assert event.kind == "hang"
            assert event.detected_by == "heartbeat"
            assert event.seconds_lost >= 1.2
        finally:
            daemon.stop()
            thread.join(timeout=10.0)

    def test_fault_report_matches_trace(self, pickle_combined):
        """The FaultReport's counts and the trace's recovery overhead
        describe the same events."""
        recorder = TraceRecorder()
        result = _run(
            engine="socket", faults="crash@2,0;raise@1,1", trace=recorder
        )
        assert np.array_equal(result.combined, pickle_combined)
        analysis = TraceAnalysis.from_recorder(recorder)
        assert analysis.n_faults == result.faults == 2
        assert len(result.fault_events) == 2
        assert result.recovered == len(result.recovered_keys) == 2
        assert analysis.recovery_overhead_seconds > 0
        # one fault killed the daemon (reconnect), one did not
        assert analysis.n_reconnects == result.reconnects == 1


class TestRetryNoHeadOfLine:
    def test_backoff_on_one_link_does_not_stall_another(self, pickle_combined):
        """The head-of-line regression: a grid backing off after a fault
        must not freeze completion handling for healthy daemons.  The
        thread-per-link engine slept the full retry delay on its only
        dispatch thread; the reactor parks the grid on a timer and keeps
        serving every other link's frames."""
        from repro.resilience import RetryPolicy

        recorder = TraceRecorder()
        result = _run(
            engine="socket",
            faults="raise@2,0",
            retry=RetryPolicy(
                backoff_seconds=1.5, backoff_factor=1.0, jitter=0.0
            ),
            trace=recorder,
        )
        assert np.array_equal(result.combined, pickle_combined)
        assert result.faults == 1
        events = recorder.events()
        fault = next(e for e in events if e.kind == "fault")
        retry = next(e for e in events if e.kind == "retry")
        assert retry.data["backoff_seconds"] == pytest.approx(1.5)
        assert retry.t - fault.t >= 1.4  # the full backoff elapsed...
        # ...and the healthy daemon's results kept landing *during* it
        during = [
            e
            for e in events
            if e.kind == "net_recv"
            and e.data.get("frame_kind") == "result"
            and e.key != (2, 0)
            and fault.t < e.t < retry.t
        ]
        assert during, (
            "no result was processed during the backoff window: "
            "the retry stalled healthy links"
        )
        analysis = TraceAnalysis.from_recorder(recorder)
        assert analysis.retry_backoff_seconds == pytest.approx(1.5)
        assert any("backoff" in line for line in analysis.report_lines())


class TestDaemonDrain:
    def test_stop_drains_inflight_jobs(self, local_daemon):
        """A ``stop`` frame is a clean shutdown: a job still computing
        gets drained — its result frame arrives before the connection
        closes — instead of being silently dropped mid-compute."""
        from repro.resilience import FaultPlan
        from repro.restructured.worker import SubsolveJobSpec

        sock = socket.create_connection(
            ("127.0.0.1", local_daemon.port), timeout=10.0
        )
        sock.settimeout(10.0)
        try:
            kind, _, _, _ = recv_frame(sock)
            assert kind == "hello"
            spec = SubsolveJobSpec(
                problem_name="rotating-cone", root=2, l=2, m=0, tol=TOL
            )
            # the hang wedges the job's thread for 0.5s *before* it
            # computes: the stop frame overtakes it mid-sleep
            plan = FaultPlan.parse("hang@2,0:seconds=0.5")
            send_frame(sock, "job", {
                "spec": spec, "plan": plan, "attempt": 1,
                "use_cache": True, "lease": None,
            })
            send_frame(sock, "stop", {})
            result = None
            while result is None:
                frame = recv_frame(sock)
                assert frame is not None, (
                    "connection closed before the in-flight job's result"
                )
                kind, data, _, _ = frame
                if kind == "result":
                    result = data
            assert tuple(result["key"]) == (2, 0)
            assert result["attempt"] == 1
        finally:
            sock.close()
        deadline = time.monotonic() + 5.0
        while local_daemon.jobs_served != 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert local_daemon.jobs_served == 1


@pytest.mark.slow
class TestManyLinks:
    def test_32_daemons_one_dispatch_thread(self, pickle_combined):
        """The service-scale claim: one master holds 32 concurrent
        daemon links through one selector — thread count stays O(1),
        results stay bitwise identical."""
        samples = []
        stop = threading.Event()

        def sample():
            while not stop.wait(0.05):
                samples.append(threading.active_count())

        before = threading.active_count()
        sampler = threading.Thread(target=sample, daemon=True)
        sampler.start()
        try:
            result = _run(engine="socket", hosts="localhost:32")
        finally:
            stop.set()
            sampler.join(timeout=5.0)
        assert result.daemons == 32
        assert np.array_equal(result.combined, pickle_combined)
        assert result.faults == 0
        assert samples
        assert max(samples) <= before + 1  # + the sampler itself


# ----------------------------------------------------------------------
# the validation harness
# ----------------------------------------------------------------------
class TestValidationHarness:
    def test_predicted_and_measured_side_by_side(self):
        from repro.cluster.validation import validate_socket_engine

        report = validate_socket_engine(level=LEVEL, processes=2)
        assert report.bitwise_identical
        assert report.n_grids == 5
        assert report.measured["work_critical"] > 0
        assert report.predicted["work_critical"] > 0
        assert report.measured["startup"] == report.predicted["startup"]
        assert report.network_bytes > 0
        lines = report.lines()
        assert any("bitwise identical to sequential: True" in l for l in lines)
        assert any(l.startswith("work_critical") for l in lines)
        assert any(l.startswith("elapsed") for l in lines)
