"""Spatial discretization: sparse operators on one anisotropic grid.

The semi-discretization of the transport equation on grid ``(l, m)``
(vertex-centred nodes, Dirichlet boundary) is the linear ODE system::

    du/dt = J u + C g(t) + s(t)          (interior nodes only)

* ``J`` — interior-to-interior operator: central second differences for
  diffusion plus first-order *upwind* (or optionally central)
  differences for advection;
* ``C`` — the interior-from-boundary coupling captured at assembly, so
  time-dependent Dirichlet data enters through a cheap matvec;
* ``s(t)`` — the source sampled on interior nodes.

Assembly is fully vectorized: 1-D difference stencils are built with
``scipy.sparse.diags`` and composed with Kronecker products, then the
variable-coefficient velocity enters as diagonal scalings.  Building
this operator "takes a lot of time" in the original program; here it is
one of the calibrated cost-model components.
"""

from __future__ import annotations

import time
from typing import Literal

import numpy as np
import scipy.sparse as sp

from .grid import Grid
from .problem import AdvectionDiffusionProblem

__all__ = ["SpatialOperator"]

Scheme = Literal["upwind", "central"]


def _interior_diags(
    n_nodes: int, diagonals: dict[int, float]
) -> sp.spmatrix:
    """Assemble ``sp.diags`` directly on interior rows only.

    ``diagonals`` maps an offset to its constant coefficient.  The first
    and last row (the Dirichlet boundary nodes) are zero; instead of
    building the full stencil and zeroing those rows through a LIL
    round-trip, each diagonal is constructed with its boundary-row
    entries already absent, then explicit zeros are pruned so the CSR
    structure matches the old row-deleted form exactly.
    """
    arrays, offsets = [], []
    for offset, value in diagonals.items():
        length = n_nodes - abs(offset)
        diag = np.full(length, value)
        # diagonal element k of offset d lives at row (k - min(d, 0));
        # blank the entries that would land on row 0 or row n_nodes-1
        rows = np.arange(length) - min(offset, 0)
        diag[(rows == 0) | (rows == n_nodes - 1)] = 0.0
        arrays.append(diag)
        offsets.append(offset)
    mat = sp.diags(arrays, offsets, format="csr")
    mat.eliminate_zeros()
    return mat


def _second_difference(n_nodes: int, h: float) -> sp.spmatrix:
    """(u[i-1] - 2 u[i] + u[i+1]) / h^2 on interior rows; zero elsewhere."""
    c = 1.0 / (h * h)
    return _interior_diags(n_nodes, {-1: c, 0: -2.0 * c, 1: c})


def _difference(n_nodes: int, h: float, kind: str) -> sp.spmatrix:
    """1-D first-difference operator on interior rows.

    ``kind``: ``minus`` = backward ``(u[i] - u[i-1])/h``; ``plus`` =
    forward ``(u[i+1] - u[i])/h``; ``central`` = ``(u[i+1] - u[i-1])/(2h)``.
    """
    if kind == "minus":
        return _interior_diags(n_nodes, {-1: -1.0 / h, 0: 1.0 / h})
    if kind == "plus":
        return _interior_diags(n_nodes, {0: -1.0 / h, 1: 1.0 / h})
    if kind == "central":
        return _interior_diags(n_nodes, {-1: -0.5 / h, 1: 0.5 / h})
    raise ValueError(f"unknown difference kind {kind!r}")  # pragma: no cover


class SpatialOperator:
    """Assembled spatial operator for one grid of one problem."""

    def __init__(
        self,
        grid: Grid,
        problem: AdvectionDiffusionProblem,
        scheme: Scheme = "upwind",
    ) -> None:
        if scheme not in ("upwind", "central"):
            raise ValueError(f"unknown advection scheme {scheme!r}")
        self.grid = grid
        self.problem = problem
        self.scheme = scheme
        started = time.perf_counter()

        nx, ny = grid.nx, grid.ny
        xx, yy = grid.meshgrid()
        a1 = np.asarray(problem.velocity_x(xx, yy), dtype=float).reshape(-1)
        a2 = np.asarray(problem.velocity_y(xx, yy), dtype=float).reshape(-1)

        ix = sp.identity(nx + 1, format="csr")
        iy = sp.identity(ny + 1, format="csr")
        lap = problem.diffusion * (
            sp.kron(_second_difference(nx + 1, grid.hx), iy, format="csr")
            + sp.kron(ix, _second_difference(ny + 1, grid.hy), format="csr")
        )

        if scheme == "upwind":
            dxm = sp.kron(_difference(nx + 1, grid.hx, "minus"), iy, format="csr")
            dxp = sp.kron(_difference(nx + 1, grid.hx, "plus"), iy, format="csr")
            dym = sp.kron(ix, _difference(ny + 1, grid.hy, "minus"), format="csr")
            dyp = sp.kron(ix, _difference(ny + 1, grid.hy, "plus"), format="csr")
            adv = (
                sp.diags(np.maximum(a1, 0.0)) @ dxm
                + sp.diags(np.minimum(a1, 0.0)) @ dxp
                + sp.diags(np.maximum(a2, 0.0)) @ dym
                + sp.diags(np.minimum(a2, 0.0)) @ dyp
            )
        else:
            dxc = sp.kron(_difference(nx + 1, grid.hx, "central"), iy, format="csr")
            dyc = sp.kron(ix, _difference(ny + 1, grid.hy, "central"), format="csr")
            adv = sp.diags(a1) @ dxc + sp.diags(a2) @ dyc

        full = (lap - adv).tocsr()

        interior_mask = np.zeros((nx + 1, ny + 1), dtype=bool)
        interior_mask[1:-1, 1:-1] = True
        flat_mask = interior_mask.reshape(-1)
        self.interior_idx = np.flatnonzero(flat_mask)
        self.boundary_idx = np.flatnonzero(~flat_mask)

        selected = full[self.interior_idx, :]
        self.J: sp.csr_matrix = selected[:, self.interior_idx].tocsr()
        self.C: sp.csr_matrix = selected[:, self.boundary_idx].tocsr()

        xs, ys = xx.reshape(-1), yy.reshape(-1)
        self._xi = xs[self.interior_idx]
        self._yi = ys[self.interior_idx]
        self._xb = xs[self.boundary_idx]
        self._yb = ys[self.boundary_idx]
        self.assembly_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    # right-hand-side pieces
    # ------------------------------------------------------------------
    @property
    def n_interior(self) -> int:
        return self.J.shape[0]

    def boundary_values(self, t: float) -> np.ndarray:
        return np.asarray(
            self.problem.boundary(self._xb, self._yb, t), dtype=float
        ).reshape(-1)

    def source_values(self, t: float) -> np.ndarray:
        return np.asarray(
            self.problem.source_or_zero(self._xi, self._yi, t), dtype=float
        ).reshape(-1)

    def forcing(self, t: float) -> np.ndarray:
        """``b(t) = C g(t) + s(t)``: everything but ``J u``."""
        return self.C @ self.boundary_values(t) + self.source_values(t)

    def rhs(self, u: np.ndarray, t: float) -> np.ndarray:
        """The full semi-discrete right-hand side ``f(u, t)``."""
        return self.J @ u + self.forcing(t)

    # ------------------------------------------------------------------
    # (de)composition of full node arrays
    # ------------------------------------------------------------------
    def initial_interior(self) -> np.ndarray:
        """The problem's initial condition sampled on interior nodes."""
        return np.asarray(
            self.problem.initial(self._xi, self._yi), dtype=float
        ).reshape(-1)

    def full_solution(self, u_interior: np.ndarray, t: float) -> np.ndarray:
        """Embed an interior vector into the full node array at time ``t``
        (boundary filled from the Dirichlet data)."""
        nx, ny = self.grid.nx, self.grid.ny
        flat = np.empty((nx + 1) * (ny + 1))
        flat[self.interior_idx] = u_interior
        flat[self.boundary_idx] = self.boundary_values(t)
        return flat.reshape(nx + 1, ny + 1)

    def interior_of(self, full: np.ndarray) -> np.ndarray:
        """Extract the interior vector from a full node array."""
        return np.asarray(full, dtype=float).reshape(-1)[self.interior_idx]

    @property
    def nnz(self) -> int:
        return self.J.nnz + self.C.nnz
