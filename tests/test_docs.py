"""The documentation's executable claims.

README and DESIGN are part of the deliverable; their code snippets and
cross-references must not rot.  These tests execute the README
quickstart verbatim and check that every file the documents point at
exists.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (REPO / name).read_text()


class TestReadme:
    def test_quickstart_snippet_runs_verbatim(self):
        readme = read("README.md")
        blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
        assert blocks, "README lost its quickstart snippet"
        exec(compile(blocks[0], "<README quickstart>", "exec"), {})

    def test_example_commands_reference_real_files(self):
        readme = read("README.md")
        for match in re.findall(r"python (examples/\S+\.py)", readme):
            assert (REPO / match).exists(), match

    def test_architecture_section_matches_packages(self):
        readme = read("README.md")
        for package in ("manifold", "protocol", "sparsegrid", "restructured",
                        "cluster", "perf", "harness"):
            assert f"{package}/" in readme
            assert (REPO / "src" / "repro" / package / "__init__.py").exists()

    def test_docs_links_exist(self):
        readme = read("README.md")
        for match in re.findall(r"docs/\w+\.md", readme):
            assert (REPO / match).exists(), match


class TestDesign:
    def test_module_map_entries_exist(self):
        design = read("DESIGN.md")
        block = re.search(r"```\nsrc/repro/\n(.*?)```", design, re.DOTALL)
        assert block is not None
        for line in block.group(1).splitlines():
            match = re.match(r"\s*(\w+\.py)\s", line)
            if not match:
                continue
            name = match.group(1)
            hits = list((REPO / "src" / "repro").rglob(name))
            assert hits, f"DESIGN.md references missing module {name}"

    def test_bench_targets_exist(self):
        design = read("DESIGN.md")
        for target in set(re.findall(r"benchmarks/\w+\.py", design)):
            assert (REPO / target).exists(), target

    def test_paper_check_stated(self):
        assert "Paper-text check" in read("DESIGN.md")


class TestExperiments:
    def test_bench_pointers_exist(self):
        experiments = read("EXPERIMENTS.md")
        for target in set(re.findall(r"benchmarks/\w+\.py", experiments)):
            assert (REPO / target).exists(), target

    def test_every_design_experiment_has_a_section(self):
        experiments = read("EXPERIMENTS.md")
        for eid in [f"E{i}" for i in range(1, 10)]:
            assert re.search(rf"\b{eid}\b", experiments), eid

    def test_reproduction_command_documented(self):
        assert "pytest benchmarks/ --benchmark-only" in read("EXPERIMENTS.md")
