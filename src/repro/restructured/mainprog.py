"""``mainprog.m`` — the small program that changes the sequential
application into a concurrent one.

The original::

    manifold Worker(event) atomic.
    manifold Master(port in p) ... atomic.
    manifold Main(process argv)
    {
        begin: ProtocolMW(Master(argv), Worker).
    }

:func:`run_concurrent` builds the same structure — a runtime, the
``Main`` coordinator, the master and worker manifolds — runs it to
completion, and returns the master's result.  The MLINK/CONFIG stages
are optional inputs: when a link spec is given, a
:class:`~repro.manifold.task.TaskManager` records the bundling of
process instances into task instances (the ebb & flow data); when a
host mapper is given, forked task instances are assigned machines.
"""

from __future__ import annotations

from typing import Optional

from repro.manifold import (
    BEGIN,
    Block,
    Coordinator,
    HostMapper,
    Runtime,
    TaskManager,
    parse_mlink,
    run_application,
)
from repro.protocol import protocol_mw

from .master import ConcurrentResult, make_master_definition
from .worker import ComputeEngine, InlineEngine, make_subsolve_worker

__all__ = ["DEFAULT_MLINK", "run_concurrent"]

#: The paper's distributed-task composition: every Master or Worker
#: instance in its own perpetual task instance.
DEFAULT_MLINK = """
{task *
  {perpetual}
  {load 1}
  {weight Master 1}
  {weight Worker 1}
}
{task mainprog
  {include mainprog.o}
  {include protocolMW.o}
}
"""


def run_concurrent(
    root: int = 2,
    level: int = 2,
    tol: float = 1.0e-3,
    problem_name: str = "rotating-cone",
    problem_kwargs: Optional[dict] = None,
    *,
    engine: Optional[ComputeEngine] = None,
    t_end: Optional[float] = None,
    scheme: str = "upwind",
    target_cap: int | None = 8,
    pool_per_diagonal: bool = False,
    link_spec_text: Optional[str] = None,
    host_mapper: Optional[HostMapper] = None,
    timeout: float = 600.0,
) -> tuple[ConcurrentResult, Optional[TaskManager]]:
    """Run the restructured application once.

    Returns the master's result and, when a link spec was supplied, the
    task manager whose timeline records the run's ebb & flow.
    """
    runtime = Runtime("mainprog")
    task_manager: Optional[TaskManager] = None
    if link_spec_text is not None:
        task_manager = TaskManager(parse_mlink(link_spec_text)).attach(runtime)
        if host_mapper is not None:
            runtime.on_activate_hooks.append(
                lambda proc: _assign_host(proc, host_mapper)
            )
            # machines are released on *task* death — any path: the last
            # resident leaving a non-perpetual instance, the perpetual
            # wind-down, or an engine killing the instance outright
            task_manager.on_task_death.append(host_mapper.free)

    own_engine = engine is None
    engine = engine if engine is not None else InlineEngine()
    master_defn = make_master_definition(
        root,
        level,
        tol,
        problem_name,
        problem_kwargs,
        t_end=t_end,
        scheme=scheme,
        target_cap=target_cap,
        pool_per_diagonal=pool_per_diagonal,
    )
    worker_defn = make_subsolve_worker(engine)

    holder: dict[str, ConcurrentResult] = {}

    def main_body() -> Block:
        block = Block("Main")

        @block.state(BEGIN)
        def begin(ctx):
            master = ctx.spawn(master_defn)
            ctx.locals["master"] = master
            ctx.run_block(protocol_mw(master, worker_defn))
            # ProtocolMW returned on `finished`; the master is still
            # running its final prolongation work — wait it out.
            ctx.terminated(master)
            holder["result"] = getattr(master, "result", None)
            ctx.halt()

        return block

    main = Coordinator(runtime, "Main", main_body, deadline=timeout)
    try:
        run_application(runtime, main, timeout=timeout)
    finally:
        if own_engine:
            engine.close()
        if task_manager is not None:
            # service processes (variables, void) unwind asynchronously
            # after shutdown; wait for them so their tasks empty before
            # the perpetual wind-down (which frees their machines via
            # the task-death subscription above)
            runtime.join_all(timeout=10.0)
            task_manager.kill_idle_perpetual()

    result = holder.get("result")
    if result is None:
        raise RuntimeError("master finished without publishing a result")
    return result, task_manager


def _assign_host(proc, mapper: HostMapper) -> None:
    task = proc.task_instance
    if task is not None and task.host is None:
        mapper.assign(task)
