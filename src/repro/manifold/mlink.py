"""MLINK — the task-composition (link) stage.

MANIFOLD bundles process instances (threads) into *task instances*
(operating-system-level processes).  The mapping is declared in a link
file, parsed here.  The grammar is the brace notation shown in the
paper's ``mainprog.mlink``::

    {task *
      {perpetual}
      {load 1}
      {weight Master 1}
      {weight Worker 1}
    }
    {task mainprog
      {include mainprog.o}
      {include protocolMW.o}
    }

Semantics reproduced from §6 of the paper:

* a task instance is *full* when its load exceeds the declared ``load``
  limit — a new resident of weight *w* fits iff ``load + w <= limit``;
* ``weight <Definition> <w>`` assigns the bundling weight of instances
  of a manifold definition (default weight 0: coordinators are free);
* ``perpetual`` keeps an emptied task instance alive so it can welcome
  a later worker instead of forcing a fresh task (and hence, in a
  distributed run, possibly a fresh machine) to be forked;
* changing ``load`` from 1 to *n* re-bundles up to *n* unit-weight
  workers into one task instance — the paper's switch from the
  distributed to the parallel configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from .errors import LinkError

__all__ = ["SExpr", "parse_braces", "TaskPattern", "LinkSpec", "parse_mlink"]


# ----------------------------------------------------------------------
# brace-expression parser
# ----------------------------------------------------------------------
@dataclass
class SExpr:
    """A parsed brace expression: a head atom plus atom/expression items."""

    items: list  # str | SExpr

    @property
    def head(self) -> str:
        if not self.items or not isinstance(self.items[0], str):
            raise LinkError(f"expression has no head atom: {self.items!r}")
        return self.items[0]

    def atoms(self) -> list[str]:
        return [i for i in self.items if isinstance(i, str)]

    def children(self) -> list["SExpr"]:
        return [i for i in self.items if isinstance(i, SExpr)]


def _tokenize(text: str) -> Iterator[str]:
    token = []
    for line in text.splitlines():
        stripped = line.split("#", 1)[0]
        for ch in stripped:
            if ch in "{}":
                if token:
                    yield "".join(token)
                    token = []
                yield ch
            elif ch.isspace():
                if token:
                    yield "".join(token)
                    token = []
            else:
                token.append(ch)
        if token:
            yield "".join(token)
            token = []


def parse_braces(text: str) -> list[SExpr]:
    """Parse the brace notation shared by MLINK and CONFIG files."""
    stack: list[list] = [[]]
    for tok in _tokenize(text):
        if tok == "{":
            stack.append([])
        elif tok == "}":
            if len(stack) == 1:
                raise LinkError("unbalanced '}' in spec")
            done = stack.pop()
            stack[-1].append(SExpr(done))
        else:
            stack[-1].append(tok)
    if len(stack) != 1:
        raise LinkError("unbalanced '{' in spec")
    top = stack[0]
    bad = [i for i in top if not isinstance(i, SExpr)]
    if bad:
        raise LinkError(f"stray atoms at top level: {bad!r}")
    return list(top)


# ----------------------------------------------------------------------
# link-spec model
# ----------------------------------------------------------------------
@dataclass
class TaskPattern:
    """One ``{task ...}`` clause."""

    name: str
    perpetual: bool = False
    load_limit: float = 1.0
    weights: dict[str, float] = field(default_factory=dict)
    includes: list[str] = field(default_factory=list)

    def weight_of(self, definition_name: str) -> float:
        """Bundling weight of instances of a manifold definition.

        Definitions without a declared weight are weightless: they ride
        along in whatever task instance is convenient.
        """
        return self.weights.get(definition_name, 0.0)

    def matches(self, task_name: str) -> bool:
        return self.name == "*" or self.name == task_name


@dataclass
class LinkSpec:
    """The parsed link file: ordered task patterns."""

    patterns: list[TaskPattern] = field(default_factory=list)

    def pattern_for(self, task_name: str) -> TaskPattern:
        """Effective pattern for a task name — later clauses refine
        earlier ones, with ``*`` as the base layer."""
        merged: Optional[TaskPattern] = None
        for pattern in self.patterns:
            if not pattern.matches(task_name):
                continue
            if merged is None:
                merged = TaskPattern(
                    name=task_name,
                    perpetual=pattern.perpetual,
                    load_limit=pattern.load_limit,
                    weights=dict(pattern.weights),
                    includes=list(pattern.includes),
                )
            else:
                merged.perpetual = merged.perpetual or pattern.perpetual
                if pattern.load_limit != 1.0:
                    merged.load_limit = pattern.load_limit
                merged.weights.update(pattern.weights)
                merged.includes.extend(pattern.includes)
        if merged is None:
            merged = TaskPattern(name=task_name)
        return merged

    @property
    def task_names(self) -> list[str]:
        return [p.name for p in self.patterns if p.name != "*"]


def parse_mlink(text: str) -> LinkSpec:
    """Parse MLINK input text into a :class:`LinkSpec`."""
    spec = LinkSpec()
    for expr in parse_braces(text):
        if expr.head != "task":
            raise LinkError(f"expected {{task ...}} clause, got {{{expr.head} ...}}")
        atoms = expr.atoms()
        if len(atoms) < 2:
            raise LinkError("{task} clause missing a task name or '*'")
        pattern = TaskPattern(name=atoms[1])
        for clause in expr.children():
            head = clause.head
            args = clause.atoms()[1:]
            if head == "perpetual":
                pattern.perpetual = True
            elif head == "load":
                if len(args) != 1:
                    raise LinkError(f"{{load}} expects one number, got {args!r}")
                pattern.load_limit = _number(args[0], "load")
            elif head == "weight":
                if len(args) != 2:
                    raise LinkError(
                        f"{{weight}} expects a definition name and a number, got {args!r}"
                    )
                pattern.weights[args[0]] = _number(args[1], "weight")
            elif head == "include":
                if len(args) != 1:
                    raise LinkError(f"{{include}} expects one object file, got {args!r}")
                pattern.includes.append(args[0])
            else:
                raise LinkError(f"unknown {{task}} directive {{{head} ...}}")
        spec.patterns.append(pattern)
    if not spec.patterns:
        raise LinkError("link spec declares no {task} clauses")
    return spec


def _number(text: str, what: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise LinkError(f"{{{what}}} argument {text!r} is not a number") from None
    if value < 0:
        raise LinkError(f"{{{what}}} must be non-negative, got {value}")
    return value
