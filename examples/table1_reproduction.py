#!/usr/bin/env python
"""Regenerate the paper's full evaluation: Table 1 and Figures 1-5.

Calibrates the cost model against the real solver, runs the Table 1
sweep (two tolerances, levels 0..15, five simulated runs per cell) on
the simulated 32-machine heterogeneous cluster, and prints the table
next to the paper's numbers followed by terminal renderings of all five
figures.

Usage::

    python examples/table1_reproduction.py [max_level]
"""

from __future__ import annotations

import sys

from repro.harness import (
    Table1Experiment,
    figure1_ebb_flow,
    figure_speedup_machines,
    figure_times,
    render_table1,
)
from repro.perf import CostModel, measure_costs


def main() -> int:
    max_level = int(sys.argv[1]) if len(sys.argv) > 1 else 15

    print("calibrating against the real solver (levels 4-6, both tolerances)...")
    records = measure_costs(
        "rotating-cone", root=2, levels=[4, 5, 6], tols=[1.0e-3, 1.0e-4]
    )
    model = CostModel.fit(records, root=2)
    print(f"  wall-time fit R^2 = {model.r_squared:.3f}")

    experiment = Table1Experiment(model, runs=5, seed=20040101)
    rows = experiment.run_all(
        levels=range(max_level + 1), tols=(1.0e-3, 1.0e-4)
    )

    print()
    print(render_table1(rows))

    print()
    fig1 = figure1_ebb_flow(experiment, level=max_level, tol=1.0e-3)
    print(fig1.rendered)

    for fig in (
        figure_times(rows, 1.0e-3, 2),
        figure_speedup_machines(rows, 1.0e-3, 3),
        figure_times(rows, 1.0e-4, 4),
        figure_speedup_machines(rows, 1.0e-4, 5),
    ):
        print()
        print(fig.rendered)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
