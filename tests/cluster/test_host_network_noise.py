"""Cluster substrates: hosts, network model, multi-user noise."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import EthernetModel, Host, MultiUserNoise, paper_cluster, uniform_cluster
from repro.cluster.host import STARTUP_HOST_NAME


class TestHosts:
    def test_paper_cluster_size(self):
        assert len(paper_cluster()) == 32

    def test_paper_cluster_clock_mix(self):
        clocks = sorted(h.clock_mhz for h in paper_cluster())
        assert clocks.count(1200) == 24
        assert clocks.count(1400) == 5
        assert clocks.count(1466) == 3

    def test_all_have_256kb_cache(self):
        assert all(h.cache_kb == 256 for h in paper_cluster())

    def test_startup_host_first(self):
        assert paper_cluster()[0].name == STARTUP_HOST_NAME

    def test_names_unique(self):
        names = [h.name for h in paper_cluster()]
        assert len(set(names)) == 32

    def test_paper_hostnames_present(self):
        """The six machines visible in the paper's output listing."""
        names = {h.name for h in paper_cluster()}
        for instrument in ("bumpa", "diplice", "alboka", "altfluit", "arghul", "basfluit"):
            assert f"{instrument}.sen.cwi.nl" in names

    def test_speed_factor_reference(self):
        assert Host("x", 1200).speed_factor == pytest.approx(1.0)
        assert Host("x", 1466).speed_factor == pytest.approx(1466 / 1200)

    def test_speeds_same_order_of_magnitude(self):
        factors = [h.speed_factor for h in paper_cluster()]
        assert max(factors) / min(factors) < 1.25

    def test_uniform_cluster(self):
        cluster = uniform_cluster(8, clock_mhz=1300)
        assert len(cluster) == 8
        assert all(h.clock_mhz == 1300 for h in cluster)

    def test_uniform_cluster_large(self):
        assert len(uniform_cluster(100)) == 100

    def test_invalid_host_rejected(self):
        with pytest.raises(ValueError):
            Host("bad", 0)
        with pytest.raises(ValueError):
            uniform_cluster(0)


class TestEthernet:
    def test_transfer_time_scales_with_bytes(self):
        net = EthernetModel()
        small = net.transfer_seconds(1_000)
        large = net.transfer_seconds(1_000_000)
        assert large > small

    def test_100mbps_wire_time(self):
        net = EthernetModel(latency_s=0.0, per_message_overhead_bytes=0)
        # 12.5 MB at 100 Mbps = 1 second
        assert net.transfer_seconds(12_500_000) == pytest.approx(1.0)

    def test_latency_floor(self):
        net = EthernetModel(latency_s=0.5e-3, per_message_overhead_bytes=0)
        assert net.transfer_seconds(0) == pytest.approx(0.5e-3)

    def test_nic_serializes_transfers(self):
        net = EthernetModel()
        s1, f1 = net.occupy("master", 0.0, 1_000_000)
        s2, f2 = net.occupy("master", 0.0, 1_000_000)
        assert s2 == pytest.approx(f1)
        assert f2 > f1

    def test_distinct_nics_do_not_contend(self):
        net = EthernetModel()
        _, f1 = net.occupy("a", 0.0, 1_000_000)
        s2, _ = net.occupy("b", 0.0, 1_000_000)
        assert s2 == 0.0

    def test_transfer_waits_for_data_ready(self):
        net = EthernetModel()
        start, _ = net.occupy("master", 5.0, 1_000)
        assert start == 5.0

    def test_reset_clears_nic_state(self):
        net = EthernetModel()
        net.occupy("master", 0.0, 1_000_000)
        net.reset()
        start, _ = net.occupy("master", 0.0, 1_000)
        assert start == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EthernetModel(bandwidth_mbps=0)
        with pytest.raises(ValueError):
            EthernetModel(latency_s=-1)
        with pytest.raises(ValueError):
            EthernetModel().transfer_seconds(-1)


class TestNoise:
    def test_quiet_noise_is_unity(self):
        sample = MultiUserNoise.quiet().sample(np.random.default_rng(0))
        assert sample.slowdown == 1.0
        assert not sample.background_job

    def test_slowdown_at_least_one(self):
        noise = MultiUserNoise()
        rng = np.random.default_rng(7)
        assert all(noise.sample(rng).slowdown >= 1.0 for _ in range(200))

    def test_seeded_determinism(self):
        noise = MultiUserNoise()
        a = [noise.sample(np.random.default_rng(3)).slowdown for _ in range(5)]
        b = [noise.sample(np.random.default_rng(3)).slowdown for _ in range(5)]
        assert a == b

    def test_background_jobs_hit_expected_rate(self):
        noise = MultiUserNoise(background_probability=0.5)
        rng = np.random.default_rng(11)
        hits = sum(noise.sample(rng).background_job for _ in range(400))
        assert 130 < hits < 270

    def test_background_job_slows_substantially(self):
        noise = MultiUserNoise(jitter_sigma=0.0, background_probability=1.0)
        sample = noise.sample(np.random.default_rng(1))
        assert sample.background_job
        assert sample.slowdown > 1.1

    def test_jitter_spread_is_modest(self):
        """The paper: five-run differences were 'not so big'."""
        noise = MultiUserNoise(background_probability=0.0)
        rng = np.random.default_rng(5)
        slowdowns = [noise.sample(rng).slowdown for _ in range(100)]
        assert max(slowdowns) < 1.25

    def test_invalid_sample_rejected(self):
        from repro.cluster.noise import NoiseSample

        with pytest.raises(ValueError):
            NoiseSample(slowdown=0.5, background_job=False)
