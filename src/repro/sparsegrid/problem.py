"""Problem definitions for the transport (advection–diffusion) solver.

The PDE on the unit square, with Dirichlet boundary conditions::

    u_t + a1(x,y) u_x + a2(x,y) u_y = D (u_xx + u_yy) + s(x, y, t)

Three ready-made problems are provided:

* :func:`manufactured_problem` — an exact solution with homogeneous
  boundary data, for convergence and correctness tests;
* :func:`inhomogeneous_problem` — an exact solution whose boundary data
  is time-dependent and non-zero, exercising the boundary path;
* :func:`rotating_cone_problem` — the classic rotating-Gaussian
  transport benchmark (no exact discrete source), the kind of workload
  the paper's application solves.

All field callables are vectorized over NumPy arrays of ``x``/``y``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

__all__ = [
    "AdvectionDiffusionProblem",
    "manufactured_problem",
    "inhomogeneous_problem",
    "rotating_cone_problem",
    "boundary_layer_problem",
]

Field2D = Callable[[np.ndarray, np.ndarray], np.ndarray]
Field2DT = Callable[[np.ndarray, np.ndarray, float], np.ndarray]


@dataclass(frozen=True)
class AdvectionDiffusionProblem:
    """One advection–diffusion problem instance.

    Attributes
    ----------
    velocity_x, velocity_y:
        The advecting velocity field components ``a1``, ``a2``.
    diffusion:
        The (constant, non-negative) diffusion coefficient ``D``.
    source:
        Source term ``s(x, y, t)``; ``None`` means zero.
    initial:
        Initial condition ``u(x, y, 0)``.
    boundary:
        Dirichlet boundary values ``g(x, y, t)``.
    exact:
        Exact solution when known (manufactured problems); used by the
        test suite for convergence measurements.
    t_end:
        Default final time of the integration.
    name:
        Human-readable identifier for reports.
    """

    name: str
    velocity_x: Field2D
    velocity_y: Field2D
    diffusion: float
    initial: Field2D
    boundary: Field2DT
    source: Optional[Field2DT] = None
    exact: Optional[Field2DT] = None
    t_end: float = 1.0

    def __post_init__(self) -> None:
        if self.diffusion < 0:
            raise ValueError(f"diffusion must be non-negative, got {self.diffusion}")
        if self.t_end <= 0:
            raise ValueError(f"t_end must be positive, got {self.t_end}")

    def source_or_zero(self, x: np.ndarray, y: np.ndarray, t: float) -> np.ndarray:
        if self.source is None:
            return np.zeros(np.broadcast(x, y).shape)
        return self.source(x, y, t)


def manufactured_problem(diffusion: float = 0.02, t_end: float = 1.0) -> AdvectionDiffusionProblem:
    """Exact solution ``u* = exp(-t) sin(pi x) sin(pi y)``.

    The velocity is a solid-body rotation about the square's centre, so
    the advection term is genuinely two-dimensional; the source term is
    derived analytically so ``u*`` solves the PDE exactly.  Boundary
    data is identically zero.
    """
    pi = math.pi

    def a1(x, y):
        return -(y - 0.5)

    def a2(x, y):
        return x - 0.5

    def exact(x, y, t):
        return np.exp(-t) * np.sin(pi * x) * np.sin(pi * y)

    def source(x, y, t):
        u = exact(x, y, t)
        ux = np.exp(-t) * pi * np.cos(pi * x) * np.sin(pi * y)
        uy = np.exp(-t) * pi * np.sin(pi * x) * np.cos(pi * y)
        # u_t = -u ; laplacian = -2 pi^2 u
        return -u + a1(x, y) * ux + a2(x, y) * uy + 2.0 * pi * pi * diffusion * u

    def initial(x, y):
        return exact(x, y, 0.0)

    def boundary(x, y, t):
        return np.zeros(np.broadcast(x, y).shape)

    return AdvectionDiffusionProblem(
        name=f"manufactured(D={diffusion})",
        velocity_x=a1,
        velocity_y=a2,
        diffusion=diffusion,
        initial=initial,
        boundary=boundary,
        source=source,
        exact=exact,
        t_end=t_end,
    )


def inhomogeneous_problem(diffusion: float = 0.05, t_end: float = 0.5) -> AdvectionDiffusionProblem:
    """Exact solution with non-zero, time-dependent boundary data.

    ``u* = exp(-t) cos(pi x) cos(pi y)`` with a constant diagonal
    velocity; exercises the Dirichlet boundary-coupling path of the
    discretization.
    """
    pi = math.pi
    ax, ay = 0.7, 0.4

    def a1(x, y):
        return np.full(np.broadcast(x, y).shape, ax)

    def a2(x, y):
        return np.full(np.broadcast(x, y).shape, ay)

    def exact(x, y, t):
        return np.exp(-t) * np.cos(pi * x) * np.cos(pi * y)

    def source(x, y, t):
        u = exact(x, y, t)
        ux = -np.exp(-t) * pi * np.sin(pi * x) * np.cos(pi * y)
        uy = -np.exp(-t) * pi * np.cos(pi * x) * np.sin(pi * y)
        return -u + ax * ux + ay * uy + 2.0 * pi * pi * diffusion * u

    return AdvectionDiffusionProblem(
        name=f"inhomogeneous(D={diffusion})",
        velocity_x=a1,
        velocity_y=a2,
        diffusion=diffusion,
        initial=lambda x, y: exact(x, y, 0.0),
        boundary=exact,
        source=source,
        exact=exact,
        t_end=t_end,
    )


def rotating_cone_problem(
    diffusion: float = 1.0e-3,
    t_end: float = 1.0,
    centre: tuple[float, float] = (0.5, 0.75),
    width: float = 0.08,
    omega: float = 2.0 * math.pi,
) -> AdvectionDiffusionProblem:
    """The rotating Gaussian cone: the canonical transport benchmark.

    A Gaussian pulse is carried around the centre of the square by a
    solid-body rotation while diffusing slowly.  ``t_end = 1`` with
    ``omega = 2*pi`` is one full revolution.  No manufactured source —
    this is the "real workload" shape: smooth but feature-carrying, and
    the adaptive integrator's step selection varies strongly with grid
    anisotropy, which is what drives the ebb & flow of worker lifetimes.
    """
    cx, cy = centre

    def a1(x, y):
        return -omega * (y - 0.5)

    def a2(x, y):
        return omega * (x - 0.5)

    def initial(x, y):
        return np.exp(-((x - cx) ** 2 + (y - cy) ** 2) / (2.0 * width * width))

    def boundary(x, y, t):
        return np.zeros(np.broadcast(x, y).shape)

    return AdvectionDiffusionProblem(
        name=f"rotating-cone(D={diffusion})",
        velocity_x=a1,
        velocity_y=a2,
        diffusion=diffusion,
        initial=initial,
        boundary=boundary,
        source=None,
        exact=None,
        t_end=t_end,
    )


def boundary_layer_problem(
    diffusion: float = 5.0e-3,
    velocity: tuple[float, float] = (1.0, 0.5),
    t_end: float = 1.5,
) -> AdvectionDiffusionProblem:
    """Advection-dominated flow developing outflow boundary layers.

    A constant wind carries the inflow profile across the square; with
    ``D << |a|`` steep layers of width ``O(D/|a|)`` form at the outflow
    boundaries (held at zero).  The hard case for the spatial scheme:
    central differences oscillate here while upwind stays monotone —
    and the steady state is approached through a genuinely stiff
    transient, exercising the integrator's step growth.  No exact
    solution; the tests check monotonicity and boundedness instead.
    """
    ax, ay = velocity
    if ax <= 0 or ay < 0:
        raise ValueError(f"velocity must point into the domain, got {velocity}")

    def a1(x, y):
        return np.full(np.broadcast(x, y).shape, ax)

    def a2(x, y):
        return np.full(np.broadcast(x, y).shape, ay)

    def inflow_profile(y):
        # smooth inflow bump along x = 0
        return np.sin(math.pi * np.clip(y, 0.0, 1.0)) ** 2

    def boundary(x, y, t):
        values = np.zeros(np.broadcast(x, y).shape)
        mask = np.broadcast_to(np.asarray(x) == 0.0, values.shape)
        values = np.where(mask, inflow_profile(np.broadcast_to(y, values.shape)), values)
        return values

    def initial(x, y):
        return np.zeros(np.broadcast(x, y).shape)

    return AdvectionDiffusionProblem(
        name=f"boundary-layer(D={diffusion})",
        velocity_x=a1,
        velocity_y=a2,
        diffusion=diffusion,
        initial=initial,
        boundary=boundary,
        source=None,
        exact=None,
        t_end=t_end,
    )
