"""Hierarchical coordination: a worker that is itself a manager.

IWIM's defining claim (§2): "A process between the lowest and highest
level may consider itself a worker doing a task for a manager higher in
the hierarchy, or a manager coordinating processes lower in the
hierarchy."  This test builds exactly that — a two-level master/worker
tree where each mid-level worker runs its *own* ``ProtocolMW`` pool —
using only the public API, with zero changes to the protocol.
"""

from __future__ import annotations

import pytest

from repro.manifold import (
    BEGIN,
    AtomicDefinition,
    Block,
    Coordinator,
    Runtime,
    run_application,
)
from repro.protocol import (
    MasterProtocolClient,
    WorkerJob,
    make_worker_definition,
    protocol_mw,
)

LEAF_FANOUT = 3


def leaf_compute(x: int) -> int:
    return x * x


leaf_worker_defn = make_worker_definition("LeafWorker", leaf_compute)


def make_mid_worker(runtime: Runtime) -> AtomicDefinition:
    """A mid-level worker: outwardly a protocol-compliant worker, but
    internally the master of its own leaf pool."""

    def mid_compute(chunk: list[int]) -> int:
        # The mid worker spawns its own sub-master + coordinator running
        # the very same ProtocolMW over leaf workers.
        partial: dict[str, int] = {}

        def sub_master_body(proc):
            client = MasterProtocolClient(proc, timeout=30)
            results = client.run_pool(
                [WorkerJob(i, value) for i, value in enumerate(chunk)]
            )
            partial["sum"] = sum(r.payload for r in results)
            client.finished()

        sub_master_defn = AtomicDefinition(
            "SubMaster", sub_master_body, in_ports=("input", "dataport")
        )

        def sub_main_body():
            block = Block("SubMain")

            @block.state(BEGIN)
            def begin(ctx):
                sub_master = ctx.spawn(sub_master_defn)
                ctx.run_block(protocol_mw(sub_master, leaf_worker_defn))
                ctx.terminated(sub_master)
                ctx.halt()

            return block

        sub_main = Coordinator(runtime, "SubMain", sub_main_body, deadline=40)
        sub_main.activate()
        assert sub_main.join(timeout=45), "sub-coordination hung"
        if sub_main.failure is not None:
            raise sub_main.failure
        return partial["sum"]

    return make_worker_definition("MidWorker", mid_compute)


class TestHierarchicalProtocol:
    def test_two_level_tree_computes_sum_of_squares(self, runtime):
        chunks = [
            list(range(i * LEAF_FANOUT, (i + 1) * LEAF_FANOUT)) for i in range(3)
        ]
        expected = sum(x * x for chunk in chunks for x in chunk)
        outcome = {}

        def top_master_body(proc):
            client = MasterProtocolClient(proc, timeout=60)
            results = client.run_pool(
                [WorkerJob(i, chunk) for i, chunk in enumerate(chunks)]
            )
            outcome["total"] = sum(r.payload for r in results)
            client.finished()

        top_master_defn = AtomicDefinition(
            "TopMaster", top_master_body, in_ports=("input", "dataport")
        )
        mid_worker_defn = make_mid_worker(runtime)

        def main_body():
            block = Block("Main")

            @block.state(BEGIN)
            def begin(ctx):
                master = ctx.spawn(top_master_defn)
                ctx.run_block(protocol_mw(master, mid_worker_defn))
                ctx.terminated(master)
                ctx.halt()

            return block

        main = Coordinator(runtime, "Main", main_body, deadline=90)
        run_application(runtime, main, timeout=90)
        assert outcome["total"] == expected

    def test_event_scoping_keeps_levels_apart(self, runtime):
        """Both levels use create_worker/rendezvous events concurrently;
        the pools stay consistent because each pool's death_worker is a
        distinct local event and each master reads only its own ports."""
        chunks = [[1, 2], [3, 4]]
        outcome = {}

        def top_master_body(proc):
            client = MasterProtocolClient(proc, timeout=60)
            results = client.run_pool(
                [WorkerJob(i, chunk) for i, chunk in enumerate(chunks)]
            )
            outcome["parts"] = sorted(r.payload for r in results)
            client.finished()

        top_master_defn = AtomicDefinition(
            "TopMaster", top_master_body, in_ports=("input", "dataport")
        )
        mid_worker_defn = make_mid_worker(runtime)

        def main_body():
            block = Block("Main")

            @block.state(BEGIN)
            def begin(ctx):
                master = ctx.spawn(top_master_defn)
                ctx.run_block(protocol_mw(master, mid_worker_defn))
                ctx.terminated(master)
                ctx.halt()

            return block

        main = Coordinator(runtime, "Main", main_body, deadline=90)
        run_application(runtime, main, timeout=90)
        assert outcome["parts"] == [1 + 4, 9 + 16]
