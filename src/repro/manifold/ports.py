"""Ports — the only openings in a process's bounding walls.

IWIM treats processes as black boxes that *only* read from their own
input ports and write to their own output ports; all wiring between
ports is done from the outside by a coordinator.  This module implements
that contract:

* an **input port** merges the units arriving over all streams currently
  attached to it, in global FIFO (unit sequence) order;
* an **output port** replicates every written unit into all streams
  currently attached to it, and blocks when nothing is attached yet (the
  producer cannot know — or care — whether its coordinator has wired it
  up already);
* attaching and detaching streams is reserved to the coordination layer
  (:mod:`repro.manifold.streams`); worker code never sees a stream.
"""

from __future__ import annotations

import enum
import threading
from typing import TYPE_CHECKING, Optional

from .errors import PortError
from .units import Unit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .process import ProcessBase
    from .streams import Stream

__all__ = ["PortDirection", "Port", "STANDARD_IN", "STANDARD_OUT", "STANDARD_ERR"]


class PortDirection(enum.Enum):
    """Whether the owning process reads from or writes to the port."""

    IN = "in"
    OUT = "out"


#: Conventional names for the three ports every process has by default.
STANDARD_IN = "input"
STANDARD_OUT = "output"
STANDARD_ERR = "error"


class Port:
    """One named opening on one process instance.

    All blocking calls are interruptible: :meth:`interrupt` wakes any
    waiter with a :class:`PortError`, which the runtime uses to unwind
    worker threads at shutdown, and which the state machinery uses to
    preempt a coordinator blocked on a port operation.
    """

    def __init__(
        self,
        owner: "ProcessBase",
        name: str,
        direction: PortDirection,
    ) -> None:
        self.owner = owner
        self.name = name
        self.direction = direction
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._streams: list["Stream"] = []
        self._interrupted = False
        self._closed = False

    # ------------------------------------------------------------------
    # wiring (coordinator side)
    # ------------------------------------------------------------------
    def attach(self, stream: "Stream") -> None:
        """Attach a stream end to this port (coordination layer only)."""
        with self._cond:
            if self._closed:
                raise PortError(f"{self!r} is closed")
            self._streams.append(stream)
            self._cond.notify_all()

    def detach(self, stream: "Stream") -> None:
        """Detach a stream end from this port (coordination layer only)."""
        with self._cond:
            try:
                self._streams.remove(stream)
            except ValueError:
                pass
            self._cond.notify_all()

    def attached_streams(self) -> list["Stream"]:
        """Snapshot of the streams currently attached (for tests/traces)."""
        with self._lock:
            return list(self._streams)

    def notify(self) -> None:
        """Wake blocked readers/writers to re-check state."""
        with self._cond:
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # I/O (worker side)
    # ------------------------------------------------------------------
    def write(self, payload: object, timeout: Optional[float] = None) -> Unit:
        """Write one unit, replicated into every attached stream.

        Blocks until at least one stream is attached — a process "simply
        writes this information to its own output port" and relies on the
        coordinator to have arranged (or to soon arrange) delivery.
        """
        if self.direction is not PortDirection.OUT:
            raise PortError(f"cannot write to {self.direction.value} port {self!r}")
        unit = Unit(payload)
        with self._cond:
            while True:
                self._check_interrupt()
                open_streams = [s for s in self._streams if s.accepts_input()]
                if open_streams:
                    break
                if not self._cond.wait(timeout):
                    raise PortError(
                        f"write on {self!r} timed out with no stream attached"
                    )
            for stream in open_streams:
                stream.push(unit)
        return unit

    def read(self, timeout: Optional[float] = None) -> object:
        """Read the earliest available unit across all attached streams.

        Blocks until a unit is available.  When a stream has been broken
        at its source and drained, it is garbage-collected off the port.
        """
        if self.direction is not PortDirection.IN:
            raise PortError(f"cannot read from {self.direction.value} port {self!r}")
        with self._cond:
            while True:
                self._check_interrupt()
                self._collect_dead_streams_locked()
                best_stream = None
                best_seq = None
                for stream in self._streams:
                    seq = stream.peek_seq()
                    if seq is None:
                        continue
                    if best_seq is None or seq < best_seq:
                        best_stream, best_seq = stream, seq
                if best_stream is not None:
                    unit = best_stream.pop()
                    return unit.payload
                if not self._cond.wait(timeout):
                    raise PortError(f"read on {self!r} timed out")

    def try_read(self) -> Optional[object]:
        """Non-blocking read; ``None`` when no unit is available."""
        with self._cond:
            self._collect_dead_streams_locked()
            best_stream = None
            best_seq = None
            for stream in self._streams:
                seq = stream.peek_seq()
                if seq is None:
                    continue
                if best_seq is None or seq < best_seq:
                    best_stream, best_seq = stream, seq
            if best_stream is None:
                return None
            return best_stream.pop().payload

    def pending(self) -> int:
        """Total units currently readable across attached streams."""
        with self._lock:
            return sum(s.pending() for s in self._streams)

    def _collect_dead_streams_locked(self) -> None:
        self._streams = [s for s in self._streams if not s.is_dead()]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def interrupt(self) -> None:
        """Make all current blocking calls raise :class:`PortError`."""
        with self._cond:
            self._interrupted = True
            self._cond.notify_all()

    def clear_interrupt(self) -> None:
        with self._cond:
            self._interrupted = False

    def close(self) -> None:
        """Permanently close the port; blocked calls raise."""
        with self._cond:
            self._closed = True
            self._interrupted = True
            self._cond.notify_all()

    def _check_interrupt(self) -> None:
        if self._interrupted or self._closed:
            raise PortError(f"{self!r} interrupted")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Port({self.owner.name}.{self.name}/{self.direction.value})"
