"""E3-E6 — Figures 2-5: the Table 1 contents, plotted.

* Figure 2: average sequential and concurrent times vs level, 1.0e-3,
  log scale.
* Figure 3: average speedup and machine count vs level, 1.0e-3.
* Figure 4: as Figure 2 for 1.0e-4.
* Figure 5: as Figure 3 for 1.0e-4.

Each bench regenerates its figure's data series, prints the terminal
plot, and asserts the curve shapes the paper describes.
"""

from __future__ import annotations

import math

import pytest

from repro.harness import figure_speedup_machines, figure_times


def _times_shape_checks(fig, rows, tol):
    st = fig.series["sequential st"]
    ct = fig.series["concurrent ct"]
    # st: near-geometric growth => close to a line on the log plot
    # (above the constant-overhead floor of the smallest levels)
    log_st = [math.log(v) for v in st]
    increments = [b - a for a, b in zip(log_st[7:], log_st[8:])]
    assert all(0.4 < inc < 1.4 for inc in increments), increments
    # ct: flat (overhead floor) at small levels...
    assert ct[5] < 3.0 * ct[0]
    # ...then rising once work dominates
    assert ct[15] > 3.0 * ct[8]
    # the curves cross between levels 8 and 13
    crossings = [lvl for lvl in range(15) if (st[lvl] < ct[lvl]) != (st[lvl + 1] < ct[lvl + 1])]
    assert crossings and 8 <= crossings[0] <= 13


@pytest.mark.benchmark(group="fig2-5")
def test_fig2_times_tol3(benchmark, table1_rows):
    fig = benchmark.pedantic(
        lambda: figure_times(table1_rows, tol=1.0e-3, figure_number=2),
        rounds=3,
        iterations=1,
    )
    print("\n" + fig.rendered)
    _times_shape_checks(fig, table1_rows, 1.0e-3)


@pytest.mark.benchmark(group="fig2-5")
def test_fig4_times_tol4(benchmark, table1_rows):
    fig = benchmark.pedantic(
        lambda: figure_times(table1_rows, tol=1.0e-4, figure_number=4),
        rounds=3,
        iterations=1,
    )
    print("\n" + fig.rendered)
    _times_shape_checks(fig, table1_rows, 1.0e-4)


def _speedup_shape_checks(fig):
    su = fig.series["speedup su"]
    m = fig.series["machines m"]
    # monotone-ish growth of both curves at the top end
    assert su[15] > su[12] > su[9]
    assert m[15] > m[12] > m[9]
    # speedup lags machines at every level (§7)
    assert all(s < mm for s, mm in zip(su, m))
    # "for the levels 12 and higher the speedup is about half of the
    # weighted number of machines used" — accept the 0.35..0.95 band
    for lvl in (12, 13, 14, 15):
        ratio = su[lvl] / m[lvl]
        assert 0.35 < ratio < 0.98, (lvl, ratio)


@pytest.mark.benchmark(group="fig2-5")
def test_fig3_speedup_tol3(benchmark, table1_rows):
    fig = benchmark.pedantic(
        lambda: figure_speedup_machines(table1_rows, tol=1.0e-3, figure_number=3),
        rounds=3,
        iterations=1,
    )
    print("\n" + fig.rendered)
    _speedup_shape_checks(fig)


@pytest.mark.benchmark(group="fig2-5")
def test_fig5_speedup_tol4(benchmark, table1_rows):
    fig = benchmark.pedantic(
        lambda: figure_speedup_machines(table1_rows, tol=1.0e-4, figure_number=5),
        rounds=3,
        iterations=1,
    )
    print("\n" + fig.rendered)
    _speedup_shape_checks(fig)
