"""E9 — overhead decomposition and design-choice ablations.

§7 names three overhead categories (multi-user environment, the
concurrency itself, the coordination layer).  This bench quantifies
each on the simulated testbed, then ablates the design choices called
out in DESIGN.md:

* **dedicated machines** (noise off) — the paper could not get these;
* **homogeneous cluster** — "unfortunately ... not available";
* **no perpetual tasks** — every worker forks a fresh task instance;
* **one pool per diagonal** — the barrier-heavy master organization;
* **I/O workers** — the §4.1 alternative the authors "have not tried
  out": the master stops passing all data itself;
* **all workers in one task instance** — the ``{load 6}`` shared-memory
  configuration on a single machine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import MultiUserNoise, SimulationParams, paper_cluster, uniform_cluster
from repro.cluster.simulator import simulate_distributed
from repro.harness import Table1Experiment, render_table
from repro.perf import decompose_run

LEVEL, TOL = 15, 1.0e-3


def run_once(cost_model, params, cluster=None, pools=None, seed=9):
    costs = cost_model.level_costs(LEVEL, TOL)
    pools = pools if pools is not None else [costs]
    return simulate_distributed(
        pools,
        cluster if cluster is not None else paper_cluster(),
        params,
        np.random.default_rng(seed),
        master_prolongation_ref_seconds=cost_model.prolongation_seconds(LEVEL),
    )


@pytest.mark.benchmark(group="ablation")
def test_overhead_decomposition(benchmark, cost_model):
    """The three §7 categories, itemized, at a gain-regime level."""
    noisy = SimulationParams()
    quiet = SimulationParams(noise=MultiUserNoise.quiet())

    def decompose():
        run = run_once(cost_model, noisy)
        twin = run_once(cost_model, quiet)
        return decompose_run(run, twin)

    report = benchmark.pedantic(decompose, rounds=3, iterations=1)
    print()
    print(
        render_table(
            ["category", "seconds", "fraction"],
            [
                ["useful (critical work + master)", report.useful_seconds,
                 report.useful_seconds / report.elapsed_seconds],
                ["concurrency overhead", report.concurrency_seconds,
                 report.concurrency_seconds / report.elapsed_seconds],
                ["coordination layer", report.coordination_seconds,
                 report.coordination_seconds / report.elapsed_seconds],
                ["multi-user effects", report.multiuser_seconds,
                 report.multiuser_seconds / report.elapsed_seconds],
            ],
            title=f"Overhead decomposition, level {LEVEL}, tol {TOL:g}",
        )
    )
    # §7: multi-user effects are "minimal in comparison with the other
    # overhead"
    assert report.multiuser_seconds < report.concurrency_seconds
    assert report.multiuser_seconds < report.coordination_seconds
    # even in the gain regime the overheads stay substantial — the
    # paper's su(15)=7.8 with 31 workers says the same (useful fraction
    # ~0.3); ours must land in that neighbourhood, dominated by the
    # concurrency category rather than the coordination layer
    useful_fraction = report.useful_seconds / report.elapsed_seconds
    assert 0.2 < useful_fraction < 0.8, useful_fraction
    assert report.concurrency_seconds > report.coordination_seconds


@pytest.mark.benchmark(group="ablation")
def test_ablation_matrix(benchmark, cost_model):
    """Elapsed time under each single-choice ablation."""
    quiet = MultiUserNoise.quiet()
    configs = {
        "paper configuration": dict(params=SimulationParams()),
        "dedicated machines": dict(params=SimulationParams(noise=quiet)),
        "homogeneous 32x1200": dict(
            params=SimulationParams(), cluster=uniform_cluster(32)
        ),
        "no perpetual tasks": dict(
            params=SimulationParams(perpetual=False)
        ),
        "I/O workers (§4.1)": dict(
            params=SimulationParams(io_workers=True)
        ),
        "no initial-data shipping": dict(
            params=SimulationParams(ship_initial_data=False)
        ),
    }

    def sweep():
        out = {}
        for name, cfg in configs.items():
            run = run_once(cost_model, cfg["params"], cluster=cfg.get("cluster"))
            out[name] = run
        return out

    runs = benchmark.pedantic(sweep, rounds=2, iterations=1)
    rows = [
        [name, run.elapsed_seconds, run.n_tasks_forked,
         max(w.compute_seconds for w in run.workers)]
        for name, run in runs.items()
    ]
    print()
    print(render_table(
        ["configuration", "ct (s)", "tasks forked", "max worker (s)"],
        rows, title=f"Ablations at level {LEVEL}, tol {TOL:g}",
    ))

    base = runs["paper configuration"].elapsed_seconds
    # dedicated machines can only help (same seed, noise removed)
    assert runs["dedicated machines"].elapsed_seconds <= base * 1.02
    # the §4.1 I/O-worker alternative does NOT pay at this scale: the
    # extra per-worker coordination eats the NIC relief — which is
    # consistent with the authors' decision not to try it ("we were
    # already content with the achieved results")
    io_delta = abs(runs["I/O workers (§4.1)"].elapsed_seconds - base)
    assert io_delta < 0.1 * base, io_delta
    # not shipping the initial grid data does help the creation ramp
    assert runs["no initial-data shipping"].elapsed_seconds < base
    # forgoing perpetual reuse forks one task per worker and costs time
    assert runs["no perpetual tasks"].n_tasks_forked == 2 * LEVEL + 1
    assert runs["no perpetual tasks"].elapsed_seconds > base


@pytest.mark.benchmark(group="ablation")
def test_ablation_pool_per_diagonal(benchmark, cost_model):
    """The two-pool master: a rendezvous barrier between the diagonals
    costs elapsed time against the single-pool organization."""
    single = Table1Experiment(cost_model, runs=3, seed=12)
    double = Table1Experiment(cost_model, runs=3, seed=12, pool_per_diagonal=True)

    row_single = benchmark.pedantic(
        lambda: single.run_level(LEVEL, TOL), rounds=2, iterations=1
    )
    row_double = double.run_level(LEVEL, TOL)
    print(
        f"\nsingle pool ct={row_single.ct:.1f}s su={row_single.su:.1f} | "
        f"pool per diagonal ct={row_double.ct:.1f}s su={row_double.su:.1f}"
    )
    assert row_double.ct > row_single.ct
    assert row_double.su < row_single.su


@pytest.mark.benchmark(group="ablation")
def test_ablation_shared_task_instance(benchmark, cost_model):
    """``{load 6}``-style bundling: all workers in one task instance on
    one (single-processor) machine loses all parallel gain — the
    configuration only pays off on a multi-processor host, which the
    simulated cluster does not have."""
    quiet = SimulationParams(noise=MultiUserNoise.quiet())
    bundled = SimulationParams(
        noise=MultiUserNoise.quiet(), workers_per_task=2 * LEVEL + 1
    )

    distributed = benchmark.pedantic(
        lambda: run_once(cost_model, quiet), rounds=2, iterations=1
    )
    one_task = run_once(cost_model, bundled)
    print(
        f"\ndistributed ct={distributed.elapsed_seconds:.1f}s "
        f"(tasks={distributed.n_tasks_forked}) | one task instance "
        f"ct={one_task.elapsed_seconds:.1f}s (tasks={one_task.n_tasks_forked})"
    )
    assert one_task.n_tasks_forked == 1
    assert distributed.elapsed_seconds < one_task.elapsed_seconds
