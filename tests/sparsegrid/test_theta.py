"""The θ-method baseline integrators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparsegrid import Grid, manufactured_problem, subsolve
from repro.sparsegrid.discretize import SpatialOperator
from repro.sparsegrid.rosenbrock import Ros2Integrator
from repro.sparsegrid.theta import ThetaIntegrator, make_integrator, steps_for_tolerance


@pytest.fixture(scope="module")
def setup():
    problem = manufactured_problem(diffusion=0.02, t_end=0.5)
    grid = Grid(2, 2, 2)
    operator = SpatialOperator(grid, problem)
    return problem, grid, operator


def temporal_error(operator, integrator) -> float:
    """Error against a tight ROS2 reference on the same grid (isolates
    the temporal error from the spatial one)."""
    reference, _ = Ros2Integrator(operator, 1e-10).integrate(
        operator.initial_interior(), 0.0, 0.5
    )
    u, _ = integrator.integrate(operator.initial_interior(), 0.0, 0.5)
    return float(np.max(np.abs(u - reference)))


class TestAccuracy:
    def test_crank_nicolson_second_order(self, setup):
        _, _, operator = setup
        e_coarse = temporal_error(operator, ThetaIntegrator(operator, 0.5, 16))
        e_fine = temporal_error(operator, ThetaIntegrator(operator, 0.5, 32))
        assert e_fine < 0.35 * e_coarse  # ~4x per halving

    def test_implicit_euler_first_order(self, setup):
        _, _, operator = setup
        e_coarse = temporal_error(operator, ThetaIntegrator(operator, 1.0, 16))
        e_fine = temporal_error(operator, ThetaIntegrator(operator, 1.0, 32))
        assert 0.4 < e_fine / e_coarse < 0.7  # ~2x per halving

    def test_crank_nicolson_beats_implicit_euler(self, setup):
        _, _, operator = setup
        cn = temporal_error(operator, ThetaIntegrator(operator, 0.5, 32))
        ie = temporal_error(operator, ThetaIntegrator(operator, 1.0, 32))
        assert cn < ie

    def test_explicit_euler_stable_with_small_steps(self, setup):
        _, _, operator = setup
        # diffusion CFL on the 16x16 grid demands tiny steps; with them
        # the answer is finite and accurate-ish
        err = temporal_error(operator, ThetaIntegrator(operator, 0.0, 4096))
        assert np.isfinite(err)
        assert err < 0.05


class TestCounters:
    def test_single_factorization(self, setup):
        _, _, operator = setup
        _, stats = ThetaIntegrator(operator, 0.5, 64).integrate(
            operator.initial_interior(), 0.0, 0.5
        )
        assert stats.factorizations == 1
        assert stats.solves == 64
        assert stats.steps_accepted == 64
        assert stats.steps_rejected == 0

    def test_explicit_needs_no_factorization(self, setup):
        _, _, operator = setup
        _, stats = ThetaIntegrator(operator, 0.0, 64).integrate(
            operator.initial_interior(), 0.0, 0.5
        )
        assert stats.factorizations == 0
        assert stats.solves == 0

    def test_history_recorded(self, setup):
        _, _, operator = setup
        integrator = ThetaIntegrator(operator, 0.5, 10, record_history=True)
        _, stats = integrator.integrate(operator.initial_interior(), 0.0, 0.5)
        assert len(stats.h_history) == 10
        assert stats.min_h == stats.max_h == pytest.approx(0.05)


class TestValidation:
    def test_theta_range(self, setup):
        _, _, operator = setup
        with pytest.raises(ValueError):
            ThetaIntegrator(operator, 1.5)

    def test_positive_steps(self, setup):
        _, _, operator = setup
        with pytest.raises(ValueError):
            ThetaIntegrator(operator, 0.5, 0)

    def test_time_interval(self, setup):
        _, _, operator = setup
        with pytest.raises(ValueError):
            ThetaIntegrator(operator, 0.5, 8).integrate(
                operator.initial_interior(), 1.0, 0.5
            )


class TestFactory:
    def test_known_names(self, setup):
        _, _, operator = setup
        assert isinstance(make_integrator("ros2", operator, 1e-3), Ros2Integrator)
        cn = make_integrator("crank-nicolson", operator, 1e-3)
        assert isinstance(cn, ThetaIntegrator) and cn.theta == 0.5
        ie = make_integrator("implicit-euler", operator, 1e-3)
        assert ie.theta == 1.0

    def test_unknown_name_rejected(self, setup):
        _, _, operator = setup
        with pytest.raises(ValueError):
            make_integrator("magic", operator, 1e-3)

    def test_steps_scale_with_tolerance(self):
        assert steps_for_tolerance(0.5, 1e-4, 1.0) > steps_for_tolerance(0.5, 1e-2, 1.0)
        # first-order methods need far more steps than CN at equal tol
        assert steps_for_tolerance(1.0, 1e-4, 1.0) > steps_for_tolerance(0.5, 1e-4, 1.0)

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            steps_for_tolerance(0.5, 0.0, 1.0)


class TestSubsolveIntegration:
    def test_subsolve_with_baseline_integrator(self):
        problem = manufactured_problem(diffusion=0.02, t_end=0.3)
        grid = Grid(2, 2, 2)
        result = subsolve(problem, grid, tol=1e-4, integrator_name="crank-nicolson")
        xx, yy = grid.meshgrid()
        err = np.max(np.abs(result.solution - problem.exact(xx, yy, 0.3)))
        assert err < 0.05  # spatial error dominates; CN tracked the ODE

    def test_ros2_uses_fewer_solves_than_first_order_baseline(self):
        """The design rationale: adaptivity+2nd order beats a fixed
        first-order method on solve count at matched tolerance."""
        problem = manufactured_problem(diffusion=0.02, t_end=0.5)
        grid = Grid(2, 2, 2)
        ros2 = subsolve(problem, grid, tol=1e-3)
        euler = subsolve(problem, grid, tol=1e-3, integrator_name="implicit-euler")
        assert ros2.stats.solves < euler.stats.solves
