"""Trace exporters: JSONL (lossless round-trip) and Chrome tracing.

* :func:`write_jsonl` / :func:`read_jsonl` — one event per line, exactly
  :meth:`~repro.trace.TraceEvent.to_dict`; re-loading reproduces the
  timeline for :class:`~repro.trace.TraceAnalysis`;
* :func:`write_chrome_trace` — the ``chrome://tracing`` /
  `Perfetto <https://ui.perfetto.dev>`_ JSON format: completed job
  attempts become duration ("X") events on one track per worker,
  everything else becomes instant ("i") markers, so a run's fan-out,
  retries and respawns are inspectable visually.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence, Union

from .analysis import TraceAnalysis
from .recorder import TraceEvent

__all__ = ["write_jsonl", "read_jsonl", "write_chrome_trace"]

PathLike = Union[str, Path]


def write_jsonl(events: Iterable[TraceEvent], path: PathLike) -> int:
    """Write one JSON object per line; returns the event count."""
    count = 0
    with Path(path).open("w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.to_dict(), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: PathLike) -> list[TraceEvent]:
    """Load a JSONL trace back into :class:`TraceEvent` records."""
    events: list[TraceEvent] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                events.append(TraceEvent.from_dict(payload))
            except (ValueError, KeyError) as exc:
                raise ValueError(
                    f"{path}:{line_no}: not a trace event: {exc}"
                ) from exc
    return events


def write_chrome_trace(events: Sequence[TraceEvent], path: PathLike) -> int:
    """Write the Chrome tracing JSON; returns the traceEvents count.

    Timestamps are microseconds relative to the earliest event, one
    ``tid`` per worker lane (the master's own work is lane 0).
    """
    analysis = TraceAnalysis(events)
    origin = analysis.t_begin
    lanes: dict[object, int] = {}

    def tid(worker: object) -> int:
        if worker is None:
            return 0
        if worker not in lanes:
            lanes[worker] = len(lanes) + 1
        return lanes[worker]

    out: list[dict] = []
    for job in analysis.jobs:
        out.append(
            {
                "name": f"job {job.key}"
                + (f" (attempt {job.attempt})" if job.attempt > 1 else ""),
                "cat": "job",
                "ph": "X",
                "ts": (job.start_t - origin) * 1e6,
                "dur": job.compute_seconds * 1e6,
                "pid": 1,
                "tid": tid(job.worker),
                "args": {
                    "key": list(job.key),
                    "attempt": job.attempt,
                    "queue_wait_seconds": job.queue_wait_seconds,
                    "fallback": job.fallback,
                },
            }
        )
    for name, begin, end in analysis.check_span_nesting():
        out.append(
            {
                "name": name,
                "cat": "span",
                "ph": "X",
                "ts": (begin - origin) * 1e6,
                "dur": (end - begin) * 1e6,
                "pid": 1,
                "tid": 0,
            }
        )
    instant_kinds = {
        "fault", "retry", "respawn", "fallback",
        "worker_spawn", "death_worker", "rendezvous",
        "cache_hit", "cache_miss",
    }
    for event in analysis.events:
        if event.kind not in instant_kinds:
            continue
        out.append(
            {
                "name": event.kind + (f" {event.key}" if event.key else ""),
                "cat": event.kind,
                "ph": "i",
                "s": "g",
                "ts": (event.t - origin) * 1e6,
                "pid": 1,
                "tid": tid(event.worker),
                "args": dict(event.data),
            }
        )
    for worker, lane in sorted(lanes.items(), key=lambda kv: kv[1]):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": lane,
                "args": {"name": f"worker {worker}"},
            }
        )
    out.append(
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "master"},
        }
    )
    Path(path).write_text(json.dumps({"traceEvents": out}, indent=1))
    return len(out)
