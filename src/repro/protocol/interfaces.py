"""Behaviour interfaces of the master and the worker (§4.3).

The paper wraps the legacy C routines in master/worker "manifolds"
written as C wrappers over a special ANSI C interface library.  This
module is that library's Python equivalent:

* :class:`MasterProtocolClient` drives the master side of the protocol —
  the numbered steps 3(a)–3(h) and 4 — so an application master only
  supplies *what* to compute, never *how* to communicate;
* :func:`make_worker_definition` builds a compliant worker manifold
  (steps 1–4 of the worker interface) around a plain compute callable.

Neither helper knows anything about sparse grids; they are reused by the
examples and tests for entirely different computations, which is the
re-usability point of the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.manifold import (
    AtomicDefinition,
    AtomicProcess,
    Event,
    EventMemory,
    EventOccurrence,
    ProcessError,
    ProcessReference,
)

from .events import events_for

__all__ = [
    "WorkerJob",
    "WorkerResult",
    "FailedWorkerResult",
    "WorkerPoolError",
    "MasterProtocolClient",
    "make_worker_definition",
]


@dataclass(frozen=True)
class WorkerJob:
    """One unit of delegated work: an identifier plus opaque payload."""

    job_id: object
    payload: Any


@dataclass(frozen=True)
class WorkerResult:
    """A worker's answer: the job identifier, result payload, timing."""

    job_id: object
    payload: Any
    compute_seconds: float = 0.0
    worker_name: str = ""


@dataclass(frozen=True)
class FailedWorkerResult:
    """A supervision-injected stand-in for a crashed worker's result.

    Delivered to the master's dataport by the coordinator (the
    ``supervise=True`` protocol extension) so the master's result count
    still closes when a worker dies without producing output.
    """

    worker_name: str
    error: str


class WorkerPoolError(RuntimeError):
    """Raised by the master client when pool workers failed.

    The protocol itself completes cleanly first (the rendezvous counts
    the failures), so the application can decide whether to retry the
    failed jobs or abort.
    """

    def __init__(self, failures: list[FailedWorkerResult]) -> None:
        names = ", ".join(f.worker_name for f in failures)
        super().__init__(f"{len(failures)} worker(s) failed: {names}")
        self.failures = failures


class MasterProtocolClient:
    """Drives the master side of the master/worker protocol.

    The wrapped process must declare a ``dataport`` input port in
    addition to the standard ports (the paper's ``Master <input,
    dataport / output, error>``).

    Typical master body::

        def master_body(proc):
            client = MasterProtocolClient(proc)
            ...sequential initialization...
            results = client.run_pool([WorkerJob(i, data_i) for i in ...])
            ...more pools as needed...
            client.finished()
            ...final sequential prolongation...
    """

    def __init__(self, proc: AtomicProcess, timeout: Optional[float] = None) -> None:
        if "dataport" not in proc.ports:
            raise ProcessError(
                f"{proc.name} must declare a 'dataport' input port to act as master"
            )
        self.proc = proc
        self.timeout = timeout
        # Step 1: make the extern events available to the master — this
        # master's own set (see events.py), so concurrent or nested
        # protocols cannot steal each other's occurrences.  The master
        # observes coordinator events through its own memory.
        self.events = events_for(proc)
        self._memory = EventMemory(owner_name=f"{proc.name}.client")
        proc.runtime.subscribe(self._memory)
        #: pools run so far (for traces and tests)
        self.pools_run = 0
        #: failure units of the most recent pool (supervision extension)
        self.last_failures: list[FailedWorkerResult] = []

    # ------------------------------------------------------------------
    # step 3: one workers-pool
    # ------------------------------------------------------------------
    def run_pool(
        self, jobs: Sequence[WorkerJob], *, raise_on_failure: bool = True
    ) -> list[WorkerResult]:
        """Create a pool with one worker per job; return all results.

        Results are returned in *arrival* order — workers finish in any
        order; callers match them to jobs via ``job_id``.

        Under a supervising protocol, crashed workers surface as
        :class:`FailedWorkerResult` units; the pool still completes its
        rendezvous, after which this method raises
        :class:`WorkerPoolError` (or, with ``raise_on_failure=False``,
        returns only the successful results and records the failures on
        :attr:`last_failures`).
        """
        jobs = list(jobs)
        self.last_failures = []
        if not jobs:
            return []
        # (a) request an empty pool of workers
        self.proc.raise_event(self.events.create_pool)
        for job in jobs:
            # (b) request one worker in the pool
            self.proc.raise_event(self.events.create_worker)
            # (c) read the worker's reference from your own input port
            ref = self.proc.read("input", timeout=self.timeout)
            if not isinstance(ref, ProcessReference):
                raise ProcessError(
                    f"master expected a process reference, got {type(ref).__name__}"
                )
            ref.process.activate()
            # (d) write the information the worker needs on your own
            #     output port (the coordinator has wired it already)
            self.proc.write(job, "output", timeout=self.timeout)
            # (e) repeat for each worker as needed
        # (f) collect the computational results from your own dataport
        results: list[WorkerResult] = []
        failures: list[FailedWorkerResult] = []
        for _ in jobs:
            unit = self._read_result()
            if isinstance(unit, FailedWorkerResult):
                failures.append(unit)
            else:
                results.append(unit)
        # (g) request the rendezvous
        self.proc.raise_event(self.events.rendezvous)
        # (h) wait for the acknowledgement
        self.wait_for(self.events.a_rendezvous)
        self.pools_run += 1
        self.last_failures = failures
        if failures and raise_on_failure:
            raise WorkerPoolError(failures)
        return results

    def _read_result(self) -> WorkerResult | FailedWorkerResult:
        payload = self.proc.read("dataport", timeout=self.timeout)
        if not isinstance(payload, (WorkerResult, FailedWorkerResult)):
            raise ProcessError(
                f"master expected a WorkerResult on dataport, got {type(payload).__name__}"
            )
        return payload

    # ------------------------------------------------------------------
    # step 4: no more pools
    # ------------------------------------------------------------------
    def finished(self) -> None:
        """Inform the coordinator the master needs no more workers."""
        self.proc.raise_event(self.events.finished)

    # ------------------------------------------------------------------
    # event plumbing
    # ------------------------------------------------------------------
    def wait_for(self, event: Event) -> EventOccurrence:
        """Block until an occurrence of ``event`` is observed."""
        occ = self._memory.wait_for_match(
            lambda o: 0 if o.event == event else None, timeout=self.timeout
        )
        if occ is None:
            raise ProcessError(
                f"{self.proc.name} timed out waiting for event {event.name!r}"
            )
        return occ


def make_worker_definition(
    name: str,
    compute: Callable[[Any], Any],
) -> AtomicDefinition:
    """Build a protocol-compliant worker manifold around ``compute``.

    The worker's behaviour interface, verbatim from the paper:

    1. read the information you need from your own input port;
    2. do the computational job;
    3. write the computed results to your own output port;
    4. raise ``death_worker`` to signal you are done and going to die.

    ``compute`` receives the job payload and returns the result payload;
    everything else — ports, events, timing — is handled here.
    """

    def body(proc: AtomicProcess, death_worker: Event) -> None:
        job = proc.read()                                      # step 1
        if not isinstance(job, WorkerJob):
            raise ProcessError(
                f"worker {proc.name} expected a WorkerJob, got {type(job).__name__}"
            )
        started = time.perf_counter()
        result_payload = compute(job.payload)                   # step 2
        elapsed = time.perf_counter() - started
        proc.write(                                             # step 3
            WorkerResult(
                job_id=job.job_id,
                payload=result_payload,
                compute_seconds=elapsed,
                worker_name=proc.name,
            )
        )
        proc.raise_event(death_worker)                          # step 4

    return AtomicDefinition(name, body)
