"""Regeneration of Figures 1–5.

* **Figure 1** — the ebb & flow: machines in use versus elapsed time
  during one distributed run at level 15 ("runs for 634 seconds and
  sometimes uses 32 machines.  The weighted average of the machines
  used in this case is 11").
* **Figures 2 and 4** — average sequential and concurrent times versus
  level, log scale, for tolerances 1.0e-3 and 1.0e-4.
* **Figures 3 and 5** — average speedup and machine count versus level
  for the two tolerances.

Figures 2–5 "graphically show the contents of Table 1", so they are
derived from :class:`~repro.harness.table1.Table1Row` sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.cluster.trace import (
    ascii_timeline,
    machines_timeline,
    weighted_average_machines,
)

from .report import render_linear_plot, render_log_plot
from .table1 import Table1Experiment, Table1Row

__all__ = [
    "FigureSeries",
    "figure1_ebb_flow",
    "figure_times",
    "figure_speedup_machines",
]


@dataclass
class FigureSeries:
    """Data + rendering for one figure."""

    name: str
    x: list[float]
    series: dict[str, list[float]] = field(default_factory=dict)
    rendered: str = ""

    def as_rows(self) -> list[list[float]]:
        keys = list(self.series)
        return [
            [xv] + [self.series[k][i] for k in keys] for i, xv in enumerate(self.x)
        ]


def figure1_ebb_flow(
    experiment: Table1Experiment,
    *,
    level: int = 15,
    tol: float = 1.0e-3,
    seed: int = 634,
) -> FigureSeries:
    """One simulated run's machines-in-use staircase (Figure 1)."""
    rng = np.random.default_rng(seed)
    run = experiment.simulate_concurrent_once(level, tol, rng)
    timeline = machines_timeline(run)
    t_end = run.elapsed_seconds
    avg = weighted_average_machines(timeline, t_end)
    peak = max(p.machines for p in timeline)
    fig = FigureSeries(
        name=f"Figure 1: ebb & flow, level {level}, tol {tol:g}",
        x=[p.time for p in timeline],
        series={"machines": [float(p.machines) for p in timeline]},
    )
    fig.rendered = (
        f"{fig.name}\n"
        f"run length {t_end:.1f}s, peak {peak} machines, "
        f"weighted average {avg:.1f} machines "
        f"(paper: 634s, peak 32, weighted average 11)\n"
        + ascii_timeline(timeline, t_end)
    )
    return fig


def figure_times(rows: Sequence[Table1Row], tol: float, figure_number: int) -> FigureSeries:
    """Figures 2 / 4: st and ct versus level, log scale."""
    selected = sorted((r for r in rows if r.tol == tol), key=lambda r: r.level)
    fig = FigureSeries(
        name=f"Figure {figure_number}: elapsed times vs level, tol {tol:g} (log scale)",
        x=[float(r.level) for r in selected],
        series={
            "sequential st": [r.st for r in selected],
            "concurrent ct": [r.ct for r in selected],
        },
    )
    fig.rendered = render_log_plot(
        fig.x, fig.series, title=fig.name, ylabel="seconds"
    )
    return fig


def figure_speedup_machines(
    rows: Sequence[Table1Row], tol: float, figure_number: int
) -> FigureSeries:
    """Figures 3 / 5: speedup and machine count versus level."""
    selected = sorted((r for r in rows if r.tol == tol), key=lambda r: r.level)
    fig = FigureSeries(
        name=f"Figure {figure_number}: speedup and machines vs level, tol {tol:g}",
        x=[float(r.level) for r in selected],
        series={
            "speedup su": [r.su for r in selected],
            "machines m": [r.m for r in selected],
        },
    )
    fig.rendered = render_linear_plot(
        fig.x, fig.series, title=fig.name, ylabel="speedup / machines"
    )
    return fig
