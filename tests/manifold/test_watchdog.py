"""The stall watchdog."""

from __future__ import annotations

import time

import pytest

from repro.manifold import AtomicDefinition, Event, Runtime, make_void
from repro.manifold.watchdog import StallReport, Watchdog


class TestActivityCounter:
    def test_broadcast_ticks(self, runtime):
        before = runtime.activity_count
        runtime.raise_event(Event("ping"))
        assert runtime.activity_count == before + 1

    def test_activation_and_death_tick(self, runtime):
        before = runtime.activity_count
        proc = runtime.spawn(AtomicDefinition("quick", lambda p: None))
        proc.join(timeout=2.0)
        # activation + death + death-event broadcast
        assert runtime.activity_count >= before + 3


class TestWatchdog:
    def test_detects_deadlocked_process(self, runtime):
        make_void(runtime)  # alive and forever silent
        reports: list[StallReport] = []
        with Watchdog(runtime, timeout=0.2, on_stall=reports.append,
                      poll_interval=0.02):
            time.sleep(0.6)
        assert reports, "the stall was not detected"
        report = reports[0]
        assert report.stalled_for_seconds >= 0.2
        assert any("void" in name for name in report.live_processes)
        assert "no coordination activity" in report.describe()

    def test_reports_once_per_episode(self, runtime):
        make_void(runtime)
        reports = []
        with Watchdog(runtime, timeout=0.1, on_stall=reports.append,
                      poll_interval=0.02):
            time.sleep(0.5)
        assert len(reports) == 1

    def test_activity_resets_episode(self, runtime):
        make_void(runtime)
        reports = []
        with Watchdog(runtime, timeout=0.25, on_stall=reports.append,
                      poll_interval=0.02):
            for _ in range(8):
                runtime.raise_event(Event("heartbeat"))
                time.sleep(0.05)
        assert reports == []

    def test_silent_when_nothing_alive(self, runtime):
        reports = []
        with Watchdog(runtime, timeout=0.1, on_stall=reports.append,
                      poll_interval=0.02):
            time.sleep(0.3)
        assert reports == []

    def test_reports_accessible_without_callback(self, runtime):
        make_void(runtime)
        with Watchdog(runtime, timeout=0.1, poll_interval=0.02) as dog:
            time.sleep(0.3)
            assert dog.reports()

    def test_pending_events_counted(self, runtime):
        from repro.manifold import Block, Coordinator, BEGIN

        def body():
            block = Block("hang")

            @block.state(BEGIN)
            def begin(ctx):
                ctx.idle()

            return block

        coord = Coordinator(runtime, "Hung", body)
        coord.activate()
        runtime.raise_event(Event("unhandled"))
        time.sleep(0.05)
        dog = Watchdog(runtime, timeout=0.1)
        report = dog.snapshot(stalled_for=1.0)
        assert report.pending_events >= 1
        coord.kill()

    def test_double_start_rejected(self, runtime):
        dog = Watchdog(runtime, timeout=1.0).start()
        try:
            with pytest.raises(RuntimeError):
                dog.start()
        finally:
            dog.stop()

    def test_invalid_timeout_rejected(self, runtime):
        with pytest.raises(ValueError):
            Watchdog(runtime, timeout=0.0)

    def test_detects_protocol_deadlock(self, runtime):
        """The motivating scenario: an unsupervised worker crash leaves
        the protocol waiting forever; the watchdog sees it."""
        from repro.manifold import BEGIN, Block, Coordinator
        from repro.protocol import (
            MasterProtocolClient,
            WorkerJob,
            make_worker_definition,
            protocol_mw,
        )

        def crash(x):
            raise RuntimeError("boom")

        worker_defn = make_worker_definition("Worker", crash)

        def master_body(proc):
            client = MasterProtocolClient(proc, timeout=10)
            client.run_pool([WorkerJob(0, 0)])
            client.finished()

        master_defn = AtomicDefinition(
            "Master", master_body, in_ports=("input", "dataport")
        )

        def main_body():
            block = Block("Main")

            @block.state(BEGIN)
            def begin(ctx):
                master = ctx.spawn(master_defn)
                ctx.run_block(protocol_mw(master, worker_defn))
                ctx.terminated(master)
                ctx.halt()

            return block

        reports = []
        main = Coordinator(runtime, "Main", main_body, deadline=30)
        with Watchdog(runtime, timeout=0.4, on_stall=reports.append,
                      poll_interval=0.05):
            main.activate()
            time.sleep(1.5)
        assert reports, "the protocol deadlock went unnoticed"
