"""run_concurrent integration: link spec, host mapping, process engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.manifold import ConfigSpec, HostMapper, parse_config
from repro.restructured import ProcessPoolEngine, run_concurrent
from repro.restructured.mainprog import DEFAULT_MLINK
from repro.sparsegrid import SequentialApplication

CONFIG_TEXT = """
{host h1 diplice.sen.cwi.nl}
{host h2 alboka.sen.cwi.nl}
{host h3 altfluit.sen.cwi.nl}
{host h4 arghul.sen.cwi.nl}
{host h5 basfluit.sen.cwi.nl}
{host h6 cimbalom.sen.cwi.nl}
{host h7 dulcimer.sen.cwi.nl}
{host h8 erhu.sen.cwi.nl}
{locus mainprog $h1 $h2 $h3 $h4 $h5 $h6 $h7 $h8}
"""


class TestHostMapping:
    def test_tasks_receive_hosts(self):
        mapper = HostMapper(parse_config(CONFIG_TEXT), "bumpa.sen.cwi.nl")
        result, task_manager = run_concurrent(
            root=2, level=1, tol=1e-3,
            link_spec_text=DEFAULT_MLINK,
            host_mapper=mapper,
            timeout=120,
        )
        assert result.n_workers == 3
        hosts = {t.host for t in task_manager.instances()}
        assert "bumpa.sen.cwi.nl" in hosts  # the start-up machine
        assert all(h is not None for h in hosts)

    def test_hosts_freed_after_run(self):
        mapper = HostMapper(parse_config(CONFIG_TEXT), "bumpa.sen.cwi.nl")
        run_concurrent(
            root=2, level=1, tol=1e-3,
            link_spec_text=DEFAULT_MLINK,
            host_mapper=mapper,
            timeout=120,
        )
        # wind-down killed all tasks; their machines were released
        assert mapper.hosts_in_use() == []


class TestProcessEngine:
    def test_process_pool_engine_through_protocol(self):
        """The full stack: MANIFOLD coordination in threads, computation
        in worker OS processes (the task-instance story, for real)."""
        seq = SequentialApplication(root=2, level=1, tol=1e-3).run()
        with ProcessPoolEngine(processes=2) as engine:
            result, _ = run_concurrent(
                root=2, level=1, tol=1e-3, engine=engine, timeout=180
            )
        assert np.array_equal(seq.combined, result.combined)

    def test_caller_owned_engine_not_closed(self):
        engine = ProcessPoolEngine(processes=1)
        try:
            run_concurrent(root=2, level=0, tol=1e-3, engine=engine, timeout=120)
            # the engine must still be usable: run_concurrent did not
            # close what it does not own
            from repro.restructured.worker import SubsolveJobSpec

            payload = engine.compute(
                SubsolveJobSpec(
                    problem_name="rotating-cone", root=2, l=0, m=0,
                    tol=1e-3, t_end=0.25,
                )
            )
            assert payload.solution.shape == (5, 5)
        finally:
            engine.close()


class TestProblemSelection:
    def test_named_problem_with_kwargs(self):
        result, _ = run_concurrent(
            root=2, level=1, tol=1e-3,
            problem_name="manufactured",
            problem_kwargs={"diffusion": 0.05},
            timeout=120,
        )
        assert result.n_workers == 3

    def test_scheme_propagates_to_workers(self):
        upwind, _ = run_concurrent(root=2, level=1, tol=1e-3, timeout=120)
        central, _ = run_concurrent(
            root=2, level=1, tol=1e-3, scheme="central", timeout=120
        )
        assert not np.array_equal(upwind.combined, central.combined)
