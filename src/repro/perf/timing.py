"""Wall-clock measurement with n-run averaging.

"To even out such 'random' perturbations, we ran the two versions of
the application five times and computed the average elapsed or wall
clock times" — this module is that protocol: run a callable ``repeats``
times, report the mean, spread and all raw samples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, TypeVar

import numpy as np

__all__ = ["TimingResult", "time_callable"]

T = TypeVar("T")


@dataclass(frozen=True)
class TimingResult:
    """Elapsed-time statistics over repeated runs."""

    samples: tuple[float, ...]
    last_value: object = None

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def std(self) -> float:
        return float(np.std(self.samples))

    @property
    def min(self) -> float:
        return float(np.min(self.samples))

    @property
    def max(self) -> float:
        return float(np.max(self.samples))

    @property
    def spread_ratio(self) -> float:
        """max/min — the paper's "same order of magnitude" check."""
        return self.max / self.min if self.min > 0 else float("inf")


def time_callable(
    fn: Callable[[], T],
    repeats: int = 5,
) -> TimingResult:
    """Run ``fn`` ``repeats`` times, timing each run with a monotonic
    clock (the ``/bin/time`` stand-in).  The last return value is kept
    so callers can validate the computation they timed."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    samples: list[float] = []
    value: object = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        samples.append(time.perf_counter() - start)
    return TimingResult(samples=tuple(samples), last_value=value)
