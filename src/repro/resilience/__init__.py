"""Fault tolerance for the execution layer — policy, injection, reporting.

The paper's master/worker protocol counts ``death_worker`` events but
assumes every worker eventually sends one; this package supplies the
recovery story for the ways real workers fail — crashes, hangs, slow
hosts, transient exceptions — while keeping all failure-handling policy
in the coordination layer, out of the computation code:

* :mod:`policy` — declarative :class:`RetryPolicy`,
  :class:`DeadlinePolicy` and :class:`EscalationPolicy` (the ladder:
  retry → reassign → sequential fallback → fail), plus the structured
  :class:`FaultEvent`/:class:`FaultReport` record and the thread-safe
  :class:`FaultLog` shared by every detector;
* :mod:`inject` — the deterministic, seedable fault injector: a
  :class:`FaultPlan` of :class:`FaultRule` entries drives real process
  kills/hangs in the fork pool *and* chaos scenarios in the cluster
  simulator from the same spec.

See ``docs/resilience.md`` for the escalation ladder, the fault-spec
grammar and the determinism guarantees.
"""

from .inject import (
    FAULT_KINDS,
    FaultPlan,
    FaultRule,
    TransientWorkerError,
    resilient_entry,
)
from .policy import (
    DeadlinePolicy,
    EscalationPolicy,
    EscalationStep,
    FaultEvent,
    FaultLog,
    FaultReport,
    FaultToleranceExhausted,
    RetryPolicy,
    deterministic_fraction,
)

__all__ = [
    "FAULT_KINDS",
    "DeadlinePolicy",
    "EscalationPolicy",
    "EscalationStep",
    "FaultEvent",
    "FaultLog",
    "FaultPlan",
    "FaultReport",
    "FaultRule",
    "FaultToleranceExhausted",
    "RetryPolicy",
    "TransientWorkerError",
    "deterministic_fraction",
    "resilient_entry",
]
