"""``subsolve(l, m)`` — the computation-intensive grid routine.

This is the routine the paper's cut identifies as the concurrency
candidate: "every grid subroutine with the property that it reads and
writes data only from and to its own grid, can be restructured to run
concurrently".  Our ``subsolve`` honours exactly that contract — its
inputs are the problem and the grid indices, its output is the final
solution on that grid; it touches no shared state, so the sequential
driver, the thread workers, and the multiprocessing workers all call
the *same* function.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .discretize import Scheme, SpatialOperator
from .grid import Grid
from .linsolve import FactorCache
from .problem import AdvectionDiffusionProblem
from .rosenbrock import Ros2Integrator, StepStats

__all__ = ["SubsolveResult", "subsolve"]


@dataclass
class SubsolveResult:
    """Outcome of one grid integration."""

    grid: Grid
    #: final solution on the full node array, boundary included
    solution: np.ndarray
    stats: StepStats
    wall_seconds: float

    @property
    def work_units(self) -> float:
        """An architecture-independent work measure for the cost model:
        interior unknowns times linear solves performed."""
        return float(self.grid.n_interior) * float(self.stats.solves)


def subsolve(
    problem: AdvectionDiffusionProblem,
    grid: Grid,
    tol: float,
    t_end: float | None = None,
    *,
    scheme: Scheme = "upwind",
    integrator_name: str = "ros2",
    record_history: bool = False,
    operator: SpatialOperator | None = None,
    factor_cache: FactorCache | None = None,
) -> SubsolveResult:
    """Integrate the problem on one grid from ``t=0`` to ``t_end``.

    Heavy computational work on grid ``(l, m)``: assemble the spatial
    operator, then run the time integrator (default: the adaptive ROS2
    of the original program; ``integrator_name`` selects a θ-method
    baseline instead).  The result is the full node array at the final
    time.

    ``operator`` is the warm-path entry point: a pre-assembled (cached)
    :class:`SpatialOperator` for exactly this grid/scheme skips the
    assembly cost; ``factor_cache`` likewise lets the ROS2 linear solver
    reuse LU factors across repeated integrations.  Both are pure reuse
    — the operator and factors are deterministic functions of their
    inputs, so results stay bitwise identical to a cold call.
    """
    started = time.perf_counter()
    t_final = problem.t_end if t_end is None else t_end
    if operator is None:
        operator = SpatialOperator(grid, problem, scheme=scheme)
    elif operator.grid != grid or operator.scheme != scheme:
        raise ValueError(
            f"cached operator is for ({operator.grid}, {operator.scheme!r}), "
            f"not ({grid}, {scheme!r})"
        )
    if integrator_name == "ros2":
        integrator = Ros2Integrator(
            operator, tol, record_history=record_history,
            factor_cache=factor_cache,
        )
    else:
        from .theta import make_integrator

        integrator = make_integrator(
            integrator_name, operator, tol, t_span=t_final,
            record_history=record_history,
        )
    u0 = operator.initial_interior()
    u_final, stats = integrator.integrate(u0, 0.0, t_final)
    solution = operator.full_solution(u_final, t_final)
    return SubsolveResult(
        grid=grid,
        solution=solution,
        stats=stats,
        wall_seconds=time.perf_counter() - started,
    )
