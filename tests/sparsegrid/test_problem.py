"""Problem definitions: PDE consistency of the manufactured solutions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparsegrid import (
    AdvectionDiffusionProblem,
    inhomogeneous_problem,
    manufactured_problem,
    rotating_cone_problem,
)
from repro.sparsegrid.registry import PROBLEMS, make_problem, register_problem


def pde_residual(problem, x, y, t, eps=1e-5):
    """u_t + a·grad(u) - D lap(u) - s, via central finite differences of
    the *exact* solution — must vanish for a correct manufactured source."""
    u = problem.exact
    ut = (u(x, y, t + eps) - u(x, y, t - eps)) / (2 * eps)
    ux = (u(x + eps, y, t) - u(x - eps, y, t)) / (2 * eps)
    uy = (u(x, y + eps, t) - u(x, y - eps, t)) / (2 * eps)
    uxx = (u(x + eps, y, t) - 2 * u(x, y, t) + u(x - eps, y, t)) / eps**2
    uyy = (u(x, y + eps, t) - 2 * u(x, y, t) + u(x, y - eps, t)) / eps**2
    a1 = problem.velocity_x(x, y)
    a2 = problem.velocity_y(x, y)
    s = problem.source_or_zero(x, y, t)
    return ut + a1 * ux + a2 * uy - problem.diffusion * (uxx + uyy) - s


@pytest.mark.parametrize(
    "factory", [manufactured_problem, inhomogeneous_problem]
)
class TestManufacturedConsistency:
    def test_exact_solution_satisfies_pde(self, factory):
        problem = factory()
        rng = np.random.default_rng(0)
        x = rng.uniform(0.15, 0.85, 40)
        y = rng.uniform(0.15, 0.85, 40)
        for t in (0.05, 0.3):
            residual = pde_residual(problem, x, y, t)
            assert np.max(np.abs(residual)) < 1e-5

    def test_initial_matches_exact_at_t0(self, factory):
        problem = factory()
        x = np.linspace(0, 1, 9)
        y = np.linspace(0, 1, 9)
        assert np.allclose(problem.initial(x, y), problem.exact(x, y, 0.0))

    def test_boundary_matches_exact(self, factory):
        problem = factory()
        xb = np.array([0.0, 1.0, 0.3, 0.7])
        yb = np.array([0.4, 0.6, 0.0, 1.0])
        t = 0.2
        assert np.allclose(
            problem.boundary(xb, yb, t), problem.exact(xb, yb, t), atol=1e-12
        )


class TestRotatingCone:
    def test_initial_peak_at_centre(self):
        problem = rotating_cone_problem(centre=(0.5, 0.75))
        assert problem.initial(np.array(0.5), np.array(0.75)) == pytest.approx(1.0)

    def test_velocity_is_solid_body_rotation(self):
        problem = rotating_cone_problem()
        x = np.array([0.5, 0.9])
        y = np.array([0.9, 0.5])
        a1 = problem.velocity_x(x, y)
        a2 = problem.velocity_y(x, y)
        # divergence-free rotation about (0.5, 0.5): a . r_perp pattern
        assert a1[0] < 0 and abs(a2[0]) < 1e-12
        assert abs(a1[1]) < 1e-12 and a2[1] > 0

    def test_no_exact_solution(self):
        assert rotating_cone_problem().exact is None

    def test_zero_source(self):
        problem = rotating_cone_problem()
        x = np.linspace(0, 1, 5)
        assert np.all(problem.source_or_zero(x, x, 0.1) == 0.0)


class TestValidation:
    def test_negative_diffusion_rejected(self):
        with pytest.raises(ValueError):
            manufactured_problem(diffusion=-1.0)

    def test_nonpositive_t_end_rejected(self):
        with pytest.raises(ValueError):
            rotating_cone_problem(t_end=0.0)


class TestRegistry:
    def test_builtin_problems_registered(self):
        assert {"manufactured", "inhomogeneous", "rotating-cone"} <= set(PROBLEMS)

    def test_make_problem_with_kwargs(self):
        problem = make_problem("rotating-cone", diffusion=0.01)
        assert problem.diffusion == 0.01

    def test_unknown_problem_rejected(self):
        with pytest.raises(KeyError):
            make_problem("nonexistent")

    def test_register_and_use(self):
        name = "test-custom-problem"
        if name not in PROBLEMS:
            register_problem(name, lambda **kw: manufactured_problem(**kw))
        assert make_problem(name).diffusion == manufactured_problem().diffusion

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_problem("rotating-cone", rotating_cone_problem)
