"""Watchdog stalls feeding :class:`~repro.resilience.DeadlinePolicy`.

Satellite of the fault-tolerance issue: a stalled scheduler must
surface as a structured :class:`~repro.resilience.FaultReport` through
the same policy layer the pool path uses — not as a silent hang.
"""

from __future__ import annotations

import time

from repro.manifold import make_void
from repro.manifold.watchdog import StallReport, Watchdog
from repro.resilience import DeadlinePolicy, FaultLog, FaultReport


class TestStallToFaultReport:
    def test_stalled_scheduler_becomes_structured_report(self, runtime):
        make_void(runtime)  # alive and forever silent: a stalled run
        reports: list[StallReport] = []
        with Watchdog(runtime, timeout=0.2, on_stall=reports.append,
                      poll_interval=0.02):
            time.sleep(0.6)
        assert reports, "the stall was not detected"

        policy = DeadlinePolicy(floor_seconds=0.1)
        fault_report = policy.report_from_stalls(reports)
        assert isinstance(fault_report, FaultReport)
        assert fault_report.faults == len(reports)
        event = fault_report.events[0]
        assert event.kind == "stall"
        assert event.detected_by == "watchdog"
        assert event.action == "report"
        # the watchdog's evidence is preserved verbatim
        assert "no coordination activity" in event.error
        assert any("void" in str(k) for k in event.key)
        assert event.seconds_lost >= 0.2

    def test_sub_floor_stalls_do_not_qualify(self, runtime):
        make_void(runtime)
        reports: list[StallReport] = []
        with Watchdog(runtime, timeout=0.2, on_stall=reports.append,
                      poll_interval=0.02):
            time.sleep(0.6)
        assert reports
        # a floor above the observed stall filters everything out
        tall = DeadlinePolicy(floor_seconds=3600.0)
        assert tall.report_from_stalls(reports) is None

    def test_stall_events_flow_into_a_shared_fault_log(self, runtime):
        make_void(runtime)
        with Watchdog(runtime, timeout=0.2, poll_interval=0.02) as dog:
            time.sleep(0.6)
            stalls = dog.reports()
        assert stalls

        log = FaultLog()
        for event in DeadlinePolicy(floor_seconds=0.1).stall_events(stalls):
            log.record(event)
        assert len(log) == len(stalls)
        assert log.report().survived  # reported, not fatal
