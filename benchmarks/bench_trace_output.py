"""E7 — §6's chronological output: the Welcome/Bye run listing.

The paper's §6 shows a distributed run with five workers (the master on
``bumpa.sen.cwi.nl``, the other task instances on five named machines)
printing labelled Welcome/Bye messages.  We regenerate the listing for
the same configuration — five workers ⇒ level 2 — and check its
structure: the label fields, the message pairing, and the §6
observation that "not all the machines specified in the input file for
the configurator are used" thanks to perpetual task reuse.
"""

from __future__ import annotations

import re

import numpy as np
import pytest

from repro.cluster.trace import render_trace, trace_messages

LABEL = re.compile(
    r"^(?P<host>\S+) (?P<task>\d+) (?P<proc>\d+) (?P<sec>\d{10}) (?P<usec>\d+)$"
)
MESSAGE = re.compile(
    r"^  (?P<taskname>\S+) (?P<manifold>\S+\(.*\)) (?P<source>\S+) "
    r"(?P<line>\d+) -> (?P<text>Welcome|Bye)$"
)


@pytest.mark.benchmark(group="trace")
def test_trace_listing_level2(benchmark, experiment):
    """Five workers, like the paper's §6 example run."""
    run = benchmark.pedantic(
        lambda: experiment.simulate_concurrent_once(2, 1.0e-3, np.random.default_rng(6)),
        rounds=3,
        iterations=1,
    )
    assert run.n_workers == 5
    text = render_trace(run)
    print("\n" + text)

    lines = text.splitlines()
    assert len(lines) % 2 == 0
    for label_line, message_line in zip(lines[0::2], lines[1::2]):
        assert LABEL.match(label_line), label_line
        assert MESSAGE.match(message_line), message_line

    # every Welcome is eventually paired with a Bye for the same process
    messages = trace_messages(run)
    open_processes: dict[tuple, float] = {}
    for msg in messages:
        key = (msg.host, msg.task_id, msg.process_id)
        if msg.text == "Welcome":
            assert key not in open_processes
            open_processes[key] = msg.time
        else:
            assert key in open_processes
            assert msg.time >= open_processes.pop(key)
    assert not open_processes


@pytest.mark.benchmark(group="trace")
def test_trace_perpetual_reuse_saves_machines(benchmark, cost_model):
    """'it can happen that we need less than six machines to run an
    application with five workers' — with short grids, reuse kicks in."""
    from repro.cluster import MultiUserNoise, SimulationParams, paper_cluster
    from repro.cluster.simulator import simulate_distributed

    costs = cost_model.level_costs(2, 1.0e-3)  # five tiny grids
    params = SimulationParams(noise=MultiUserNoise.quiet())

    run = benchmark.pedantic(
        lambda: simulate_distributed(
            [costs], paper_cluster(), params, np.random.default_rng(0)
        ),
        rounds=3,
        iterations=1,
    )
    assert run.n_workers == 5
    assert run.n_tasks_forked < 5, "perpetual reuse must save machines"
    worker_hosts = {w.host.name for w in run.workers}
    assert len(worker_hosts) == run.n_tasks_forked


@pytest.mark.benchmark(group="trace")
def test_trace_hosts_match_paper_cluster(benchmark, experiment):
    run = benchmark.pedantic(
        lambda: experiment.simulate_concurrent_once(2, 1.0e-3, np.random.default_rng(1)),
        rounds=2,
        iterations=1,
    )
    assert run.master_host.name == "bumpa.sen.cwi.nl"
    for worker in run.workers:
        assert worker.host.name.endswith(".sen.cwi.nl")
