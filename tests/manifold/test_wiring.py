"""The arrow-chain wiring notation."""

from __future__ import annotations

import pytest

from repro.manifold import (
    BEGIN,
    AtomicDefinition,
    Block,
    Coordinator,
    ProcessReference,
    StreamError,
    StreamType,
)
from repro.manifold.wiring import parse_wire_spec

IDLE = AtomicDefinition("idle", lambda p: p.read())


class TestParser:
    def test_simple_chain(self):
        elements = parse_wire_spec("a -> b")
        assert [(e.name, e.port, e.is_reference) for e in elements] == [
            ("a", None, False), ("b", None, False)
        ]

    def test_ports_and_reference(self):
        elements = parse_wire_spec("&worker -> master -> worker -> master.dataport")
        assert elements[0].is_reference and elements[0].name == "worker"
        assert elements[3].port == "dataport"

    def test_whitespace_tolerant(self):
        elements = parse_wire_spec("  a   ->b.input ")
        assert elements[1].port == "input"

    def test_needs_an_arrow(self):
        with pytest.raises(StreamError):
            parse_wire_spec("lonely")

    def test_empty_element_rejected(self):
        with pytest.raises(StreamError):
            parse_wire_spec("a -> -> b")

    def test_malformed_port_rejected(self):
        with pytest.raises(StreamError):
            parse_wire_spec("a. -> b")

    def test_reference_with_port_rejected(self):
        with pytest.raises(StreamError):
            parse_wire_spec("&a.output -> b")

    def test_reference_mid_chain_rejected(self):
        with pytest.raises(StreamError):
            parse_wire_spec("a -> &b -> c")


def run_in_state(runtime, body):
    result = {}

    def factory():
        block = Block("Main")

        @block.state(BEGIN)
        def begin(ctx):
            result["value"] = body(ctx)
            ctx.halt()

        return block

    coordinator = Coordinator(runtime, "Main", factory, deadline=10)
    coordinator.activate()
    assert coordinator.join(timeout=12)
    if coordinator.failure:
        raise coordinator.failure
    return result["value"]


class TestWiring:
    def test_chain_moves_data(self, runtime):
        a = runtime.create(IDLE)
        b = runtime.create(IDLE)

        def body(ctx):
            streams = ctx.wire("a -> b", env={"a": a, "b": b})
            a.output.write("through")
            return streams, b.input.read(timeout=5)

        streams, received = run_in_state(runtime, body)
        assert received == "through"
        assert len(streams) == 1

    def test_reference_element_delivers_reference(self, runtime):
        w = runtime.create(IDLE)
        m = runtime.create(IDLE)

        def body(ctx):
            ctx.wire("&w -> m", env={"w": w, "m": m})
            return m.input.read(timeout=5)

        ref = run_in_state(runtime, body)
        assert isinstance(ref, ProcessReference)
        assert ref.process is w

    def test_types_by_arrow_index(self, runtime):
        a = runtime.create(IDLE)
        b = runtime.create(IDLE)
        c = runtime.create(IDLE)

        def body(ctx):
            return ctx.wire(
                "a -> b -> c", env={"a": a, "b": b, "c": c},
                types={1: StreamType.KK},
            )

        streams = run_in_state(runtime, body)
        assert streams[0].type is StreamType.BK
        assert streams[1].type is StreamType.KK

    def test_port_selection(self, runtime):
        master = runtime.create(
            AtomicDefinition("m", lambda p: p.read(), in_ports=("input", "dataport"))
        )
        w = runtime.create(IDLE)

        def body(ctx):
            ctx.wire("w -> m.dataport", env={"w": w, "m": master})
            w.output.write(99)
            return master.port("dataport").read(timeout=5)

        assert run_in_state(runtime, body) == 99

    def test_unknown_process_rejected(self, runtime):
        a = runtime.create(IDLE)

        def body(ctx):
            ctx.wire("a -> ghost", env={"a": a})

        with pytest.raises(StreamError, match="unknown process"):
            run_in_state(runtime, body)

    def test_direction_mismatch_rejected(self, runtime):
        a = runtime.create(IDLE)
        b = runtime.create(IDLE)

        def body(ctx):
            ctx.wire("a -> b.output", env={"a": a, "b": b})

        with pytest.raises(StreamError, match="not an input port"):
            run_in_state(runtime, body)

    def test_chain_streams_dismantled_on_transition(self, runtime):
        from repro.manifold import Event

        a = runtime.create(IDLE)
        b = runtime.create(IDLE)
        go = Event("go")
        seen = {}

        def factory():
            block = Block("Main")

            @block.state(BEGIN)
            def begin(ctx):
                seen["streams"] = ctx.wire(
                    "a -> b", env={"a": a, "b": b}, types={0: StreamType.BK}
                )
                ctx.post(go)
                ctx.idle()

            @block.state(go)
            def on_go(ctx):
                ctx.halt()

            return block

        coordinator = Coordinator(runtime, "Main", factory, deadline=10)
        coordinator.activate()
        assert coordinator.join(timeout=12)
        assert seen["streams"][0].source_broken
