"""Named scenario configurations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    SCENARIOS,
    get_scenario,
    scenario_names,
    simulate_distributed,
)
from repro.cluster.simulator import GridCost


class TestRegistry:
    def test_expected_scenarios_present(self):
        assert {"paper", "dedicated", "homogeneous", "no-perpetual",
                "io-workers", "no-initial-data", "one-task",
                "chaos-crash", "chaos-slow-host"} <= set(SCENARIOS)

    def test_get_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("warp-drive")

    def test_names_match_registry(self):
        assert set(scenario_names()) == set(SCENARIOS)

    def test_descriptions_nonempty(self):
        assert all(s.description for s in SCENARIOS.values())


class TestConfigurations:
    def test_paper_scenario_is_noisy_heterogeneous(self):
        scenario = get_scenario("paper")
        assert scenario.params().noise.jitter_sigma > 0
        clocks = {h.clock_mhz for h in scenario.cluster()}
        assert clocks == {1200, 1400, 1466}

    def test_dedicated_scenario_is_quiet(self):
        params = get_scenario("dedicated").params()
        assert params.noise.jitter_sigma == 0.0
        assert params.noise.background_probability == 0.0

    def test_homogeneous_cluster_uniform(self):
        clocks = {h.clock_mhz for h in get_scenario("homogeneous").cluster()}
        assert clocks == {1200}

    def test_flags(self):
        assert get_scenario("no-perpetual").params().perpetual is False
        assert get_scenario("io-workers").params().io_workers is True
        assert get_scenario("no-initial-data").params().ship_initial_data is False
        assert get_scenario("one-task").params().workers_per_task >= 31

    def test_params_are_fresh_instances(self):
        a = get_scenario("paper").params()
        b = get_scenario("paper").params()
        assert a is not b
        a.network.occupy("x", 0.0, 100)  # mutating one must not leak
        assert b.network.nic_free_at("x") == 0.0

    def test_every_scenario_simulates(self):
        costs = [
            GridCost(l=i, m=0, work_ref_seconds=2.0, result_bytes=10_000)
            for i in range(5)
        ]
        for name, scenario in SCENARIOS.items():
            run = simulate_distributed(
                [costs], scenario.cluster(), scenario.params(),
                np.random.default_rng(1),
            )
            assert run.n_workers == 5, name
            assert run.elapsed_seconds > 0, name


class TestChaosScenarios:
    def _run(self, name: str, n: int = 20):
        scenario = get_scenario(name)
        costs = [
            GridCost(l=i, m=j, work_ref_seconds=2.0, result_bytes=10_000)
            for i in range(n // 2) for j in (0, 1)
        ]
        return simulate_distributed(
            [costs], scenario.cluster(), scenario.params(),
            np.random.default_rng(1),
        )

    def test_chaos_crash_pays_itemized_recovery(self):
        clean = self._run("paper")
        chaotic = self._run("chaos-crash")
        assert chaotic.n_faults > 0
        assert chaotic.breakdown["recovery"] > 0.0
        assert clean.n_faults == 0
        assert clean.breakdown["recovery"] == 0.0
        assert chaotic.elapsed_seconds > clean.elapsed_seconds
        # one trace interval per grid, faults or not
        assert chaotic.n_workers == clean.n_workers

    def test_chaos_slow_host_stretches_compute_without_faults(self):
        clean = self._run("paper")
        slowed = self._run("chaos-slow-host")
        assert slowed.n_faults == 0
        assert slowed.breakdown["recovery"] == 0.0
        assert slowed.elapsed_seconds > clean.elapsed_seconds

    def test_chaos_runs_are_deterministic(self):
        a = self._run("chaos-crash")
        b = self._run("chaos-crash")
        assert a.n_faults == b.n_faults
        assert a.elapsed_seconds == b.elapsed_seconds
