"""The socket-backed distributed task engine: MLINK semantics over TCP.

The cluster simulator predicts what the paper's MANIFOLD/PVM deployment
*would* do; this module runs the same master/worker protocol over real
sockets.  A :class:`WorkerDaemon` is one machine of the paper's testbed:
an OS process listening on a TCP port, hosting task instances (the
:class:`~repro.restructured.taskengine.TaskInstanceEngine`) whose
``{load N}`` capacity and ``{perpetual}`` reuse mirror the MLINK
pattern attributes, reachable by address exactly like a CONFIG
``{host}`` entry.  The master side (:class:`SocketTaskEngine`) plays
the MANIFOLD master: it spawns or connects to daemons, ships job specs,
and collects results — every byte crossing a real socket.

Wire protocol: length-prefixed frames.  A frame is an 8-byte header
(``RPRO`` magic + big-endian payload length) followed by the pickled
``(kind, data)`` body.  Kinds: ``hello``/``heartbeat``/``result``/
``error`` from the daemon, ``job``/``stop`` from the master.  The magic
check rejects cross-talk from a non-daemon peer before any unpickling.

Failure model — composing with the resilience ladder of
:mod:`repro.resilience`:

* a **dropped connection** (daemon killed, network reset, truncated
  frame) convicts every job in flight on that daemon as a ``crash``
  fault; the master reconnects (re-spawning a local daemon, or
  re-dialing a remote one) with exponential backoff, recorded as a
  ``reconnect`` trace event;
* a **silent daemon** — no frame within ``heartbeat_timeout`` — is a
  ``hang``: the daemon is killed and replaced, its jobs re-dispatched;
* a **per-job deadline** (cost-model-scaled) catches a wedged job on an
  otherwise healthy daemon; the daemon is replaced so the wedged
  compute cannot outlive the run (or scribble into a reclaimed lease);
* escalation follows the same :class:`~repro.resilience.policy.
  EscalationPolicy` ladder as the fork pool — retry, reassign,
  in-master sequential fallback, structured failure.

Replays are idempotent: results are keyed ``(l, m)`` and a result frame
whose attempt does not match the outstanding one is dropped, so a
daemon that answers *after* being declared lost cannot corrupt the run.

Data plane: a **locally spawned** daemon shares the master's machine,
so the zero-copy shm transport works — the daemon writes through the
job's :class:`~repro.perf.dataplane.ShmLease` and only the descriptor
crosses the socket.  A daemon reached by address is not known to be
host-local, so its jobs carry no lease and the payload falls back to
pickle framing (the per-payload fallback of :func:`~repro.restructured.
worker.ship_payload` keeps either path bitwise identical).  One
subtlety: an attach inside a spawned daemon registers the segment with
the *daemon's* resource tracker, which would unlink the master's live
segment when the daemon exits — the daemon unregisters each segment
right after its first attach (:func:`_untrack_after_ship`).
"""

from __future__ import annotations

import os
import pickle
import socket
import struct
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from queue import Empty, Queue
from typing import Callable, Optional

from .taskengine import TaskInstanceDied, TaskInstanceEngine
from .worker import SubsolveJobSpec, SubsolvePayload, execute_job, ship_payload

__all__ = [
    "FrameError",
    "send_frame",
    "recv_frame",
    "HostSpec",
    "parse_hosts",
    "WorkerDaemon",
    "NetOutcome",
    "SocketTaskEngine",
]

#: frame header: magic + big-endian body length
MAGIC = b"RPRO"
_HEADER = struct.Struct("!4sI")

#: refuse to allocate absurd frames (a corrupted or hostile header)
MAX_FRAME_BYTES = 1 << 30


class FrameError(ConnectionError):
    """The framed stream broke: bad magic, truncation, oversize."""


def _recv_exact(sock: socket.socket, n: int, *, at_boundary: bool) -> Optional[bytes]:
    """Read exactly ``n`` bytes.

    Returns ``None`` on a clean EOF at a frame boundary (the peer closed
    between frames); raises :class:`FrameError` on EOF mid-frame (the
    peer died with a frame in flight — e.g. a connection dropped during
    a result transfer).
    """
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if at_boundary and not chunks:
                return None
            raise FrameError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, kind: str, data: object) -> tuple[int, float]:
    """Send one ``(kind, data)`` frame; returns ``(bytes, seconds)``.

    The seconds are the time spent inside ``sendall`` — with a full
    socket buffer that is real backpressure wait, the master-side
    ``send_wait`` of the overhead decomposition.
    """
    body = pickle.dumps((kind, data), protocol=pickle.HIGHEST_PROTOCOL)
    frame = _HEADER.pack(MAGIC, len(body)) + body
    t0 = time.perf_counter()
    sock.sendall(frame)
    return len(frame), time.perf_counter() - t0


def recv_frame(
    sock: socket.socket,
) -> Optional[tuple[str, object, int, float]]:
    """Receive one frame; returns ``(kind, data, bytes, seconds)``.

    ``None`` means the peer closed cleanly between frames.  The seconds
    cover only the *body* transfer (the header wait is idle time, not
    network time).
    """
    header = _recv_exact(sock, _HEADER.size, at_boundary=True)
    if header is None:
        return None
    magic, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {length} bytes exceeds the cap")
    t0 = time.perf_counter()
    body = _recv_exact(sock, length, at_boundary=False)
    seconds = time.perf_counter() - t0
    kind, data = pickle.loads(body)
    return kind, data, _HEADER.size + length, seconds


# ----------------------------------------------------------------------
# the hosts grammar
# ----------------------------------------------------------------------
_LOCAL_NAMES = ("localhost", "127.0.0.1", "local")


@dataclass(frozen=True)
class HostSpec:
    """One entry of the ``--hosts`` list.

    ``spawn > 0`` means: fork that many loopback daemons on this machine
    (the CONFIG ``{host}`` entries of a single-machine run; shm-capable
    because they share the master's memory).  ``port`` names an
    already-listening daemon to dial instead — not known to be
    host-local, so its payloads travel by pickle framing.
    """

    host: str
    spawn: int = 0
    port: Optional[int] = None

    @property
    def local(self) -> bool:
        return self.spawn > 0


def parse_hosts(text: str) -> tuple[HostSpec, ...]:
    """Parse the ``--hosts`` grammar.

    ::

        hosts  := entry (',' entry)*
        entry  := 'localhost' [':' count]     # spawn count loopback daemons
                | 'tcp://' host ':' port      # dial a running daemon

    Examples: ``localhost:2`` (two spawned daemons),
    ``localhost:2,tcp://node7:9123`` (two local plus one remote).
    """
    specs: list[HostSpec] = []
    for raw in text.split(","):
        entry = raw.strip()
        if not entry:
            continue
        if entry.startswith("tcp://"):
            rest = entry[len("tcp://") :]
            host, sep, port_text = rest.rpartition(":")
            if not sep or not host:
                raise ValueError(
                    f"bad hosts entry {entry!r}: expected tcp://host:port"
                )
            try:
                port = int(port_text)
            except ValueError:
                raise ValueError(
                    f"bad port {port_text!r} in hosts entry {entry!r}"
                ) from None
            specs.append(HostSpec(host=host, port=port))
            continue
        host, _, count_text = entry.partition(":")
        if host not in _LOCAL_NAMES:
            raise ValueError(
                f"bad hosts entry {entry!r}: only 'localhost[:N]' entries "
                "are spawnable; use tcp://host:port for a running daemon"
            )
        try:
            count = int(count_text) if count_text else 1
        except ValueError:
            raise ValueError(
                f"bad daemon count {count_text!r} in hosts entry {entry!r}"
            ) from None
        if count < 1:
            raise ValueError(f"daemon count must be >= 1 in {entry!r}")
        specs.append(HostSpec(host="127.0.0.1", spawn=count))
    if not specs:
        raise ValueError(f"hosts spec {text!r} contains no entries")
    return tuple(specs)


# ----------------------------------------------------------------------
# the daemon side
# ----------------------------------------------------------------------
def _untrack_after_ship(payload: SubsolvePayload, untracked: set) -> None:
    """Cancel this process's resource-tracker claim on a just-attached
    segment.

    The master owns the arena; a spawned daemon that attaches a segment
    must not let *its* tracker unlink the master's live block at daemon
    exit.  Attaches are cached per name (:func:`~repro.perf.dataplane.
    _writer_segment`), so one unregister per first attach balances the
    books exactly.
    """
    descriptor = payload.descriptor
    if descriptor is None or descriptor.name in untracked:
        return
    from multiprocessing import resource_tracker

    try:
        resource_tracker.unregister(descriptor.name, "shared_memory")
    except Exception:  # pragma: no cover - tracker not running
        pass
    untracked.add(descriptor.name)


class WorkerDaemon:
    """One machine of the testbed: task instances behind a TCP port.

    ``capacity`` is the MLINK ``{load N}`` limit — how many jobs may
    compute concurrently, each in its own OS task instance;
    ``perpetual`` keeps an emptied instance alive to welcome the next
    worker.  One master connection is served at a time; after a
    disconnect the daemon returns to ``accept`` so a reconnecting
    master finds it again.

    Fault injection happens *here*, where the paper's faults happen —
    on the worker machine: a matched ``crash`` rule kills the whole
    daemon process unannounced (``os._exit``), ``hang`` wedges the job's
    serving thread, ``raise`` reports a structured error frame, ``slow``
    stretches the job to factor × its own duration.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        capacity: int = 1,
        perpetual: bool = True,
        heartbeat_interval: float = 0.5,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.heartbeat_interval = heartbeat_interval
        self._listener = socket.create_server((host, port))
        self.address = self._listener.getsockname()[:2]
        self._engine = TaskInstanceEngine(
            perpetual=perpetual, max_instances=capacity
        )
        self._stop = threading.Event()
        self._send_lock = threading.Lock()
        self._untracked: set = set()
        self.jobs_served = 0
        #: chaos hook (tests only): keys whose first result frame is
        #: truncated mid-transfer, the connection hard-closed under it
        self._drop_result_keys: set = set()

    @property
    def port(self) -> int:
        return self.address[1]

    def announce(self, stream=None) -> None:
        """Print the spawner handshake line (``LISTENING <port>``)."""
        print(f"LISTENING {self.port}", file=stream or sys.stdout, flush=True)

    def stop(self) -> None:
        self._stop.set()

    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Accept masters until stopped; serve one connection at a time."""
        self._listener.settimeout(0.2)
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                try:
                    self._serve_connection(conn)
                finally:
                    try:
                        conn.close()
                    except OSError:  # pragma: no cover - defensive
                        pass
        finally:
            self._listener.close()
            self._engine.close()

    def _serve_connection(self, conn: socket.socket) -> None:
        self._send(conn, "hello", {
            "pid": os.getpid(),
            "capacity": self.capacity,
            "perpetual": self._engine.perpetual,
        })
        beat_stop = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(conn, beat_stop), daemon=True
        )
        beat.start()
        try:
            while not self._stop.is_set():
                try:
                    frame = recv_frame(conn)
                except (FrameError, OSError):
                    return  # master gone; back to accept
                if frame is None:
                    return
                kind, data, _, _ = frame
                if kind == "stop":
                    self._stop.set()
                    return
                if kind == "job":
                    threading.Thread(
                        target=self._run_job, args=(conn, data), daemon=True
                    ).start()
                # unknown kinds are ignored: forward compatibility
        finally:
            beat_stop.set()
            beat.join(timeout=1.0)

    def _heartbeat_loop(self, conn: socket.socket, stop: threading.Event) -> None:
        while not stop.wait(self.heartbeat_interval):
            if not self._send(conn, "heartbeat", {"pid": os.getpid()}):
                return

    def _send(self, conn: socket.socket, kind: str, data: object) -> bool:
        """Locked send; ``False`` when the master is gone (the job's
        result is simply lost — the master's re-dispatch recomputes it)."""
        with self._send_lock:
            try:
                send_frame(conn, kind, data)
                return True
            except (FrameError, OSError):
                return False

    # ------------------------------------------------------------------
    def _run_job(self, conn: socket.socket, data: dict) -> None:
        spec: SubsolveJobSpec = data["spec"]
        plan = data.get("plan")
        attempt = int(data.get("attempt", 1))
        use_cache = bool(data.get("use_cache", True))
        lease = data.get("lease")
        key = (spec.l, spec.m)
        action = plan.action(spec.l, spec.m, attempt) if plan is not None else None
        if action is not None and action.kind == "crash":
            # the daemon kill: this machine drops off the network,
            # task instances and all, exactly as unannounced as a
            # power failure looks from the master's side
            os._exit(action.exit_code)
        if action is not None and action.kind == "hang":
            time.sleep(action.seconds)
        if action is not None and action.kind == "raise":
            self._send(conn, "error", {
                "key": key,
                "attempt": attempt,
                "fault_kind": "exception",
                "error": (
                    f"injected transient fault on grid {key}, "
                    f"attempt {attempt}"
                ),
            })
            return
        started = time.perf_counter()
        try:
            payload = self._engine.compute(spec, use_cache=use_cache)
        except TaskInstanceDied as exc:
            self._send(conn, "error", {
                "key": key,
                "attempt": attempt,
                "fault_kind": exc.fault_kind,
                "error": str(exc),
            })
            return
        except Exception as exc:  # noqa: BLE001 - marshal the failure back
            self._send(conn, "error", {
                "key": key,
                "attempt": attempt,
                "fault_kind": "exception",
                "error": f"{type(exc).__name__}: {exc}",
            })
            return
        if action is not None and action.kind == "slow":
            time.sleep((action.factor - 1.0) * (time.perf_counter() - started))
        payload = ship_payload(payload, lease)
        _untrack_after_ship(payload, self._untracked)
        if key in self._drop_result_keys:
            self._drop_result_keys.discard(key)
            self._drop_mid_result(conn, key, attempt, payload)
            return
        if self._send(conn, "result", {
            "key": key, "attempt": attempt, "payload": payload,
        }):
            self.jobs_served += 1

    def _drop_mid_result(
        self, conn: socket.socket, key, attempt: int, payload
    ) -> None:
        """Chaos hook: truncate the result frame and kill the link —
        a connection dropped during the result transfer."""
        body = pickle.dumps(
            ("result", {"key": key, "attempt": attempt, "payload": payload}),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        frame = _HEADER.pack(MAGIC, len(body)) + body
        with self._send_lock:
            try:
                conn.sendall(frame[: max(_HEADER.size, len(frame) // 2)])
            except OSError:
                pass
            # shutdown, not just close: the serve loop's thread is
            # blocked in recv() on this fd, and a bare close() would
            # leave the file description held by that syscall — no FIN
            # ever goes out and the master waits for body bytes forever.
            # shutdown() terminates the connection regardless.
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass


# ----------------------------------------------------------------------
# the master side
# ----------------------------------------------------------------------
@dataclass
class _NetPending:
    """Master-side bookkeeping of one job attempt in flight on a daemon."""

    spec: SubsolveJobSpec
    attempt: int
    link: "_DaemonLink"
    deadline_at: float
    submitted_at: float
    lease: Optional[object] = None


class _DaemonLink:
    """One daemon as the master sees it: socket, reader, slots."""

    def __init__(
        self,
        name: str,
        *,
        spawned: bool,
        address: Optional[tuple[str, int]] = None,
    ) -> None:
        self.name = name
        self.spawned = spawned          # we own the process (loopback)
        self.shm_ok = spawned           # host-local => lease-capable
        self.address = address          # dial target for connect mode
        self.sock: Optional[socket.socket] = None
        self.proc: Optional[subprocess.Popen] = None
        self.reader: Optional[threading.Thread] = None
        self.capacity = 0               # learned from the hello frame
        self.pid: Optional[int] = None
        self.inflight: dict[tuple[int, int], _NetPending] = {}
        self.last_frame = time.monotonic()
        self.alive = False
        self.reconnects = 0
        #: bumped on every (re)attach; events from an older epoch's
        #: reader are void — a dead connection's last gasp must not
        #: convict its successor
        self.epoch = 0

    @property
    def free_slots(self) -> int:
        return max(0, self.capacity - len(self.inflight))


@dataclass
class NetOutcome:
    """What one socket-engine run produced (the resilient-outcome shape
    plus the network accounting)."""

    payloads: dict[tuple[int, int], SubsolvePayload]
    completion_order: tuple[tuple[int, int], ...]
    attempts: int
    events: tuple
    recovered_keys: tuple[tuple[int, int], ...]
    fallback_keys: tuple[tuple[int, int], ...]
    reconnects: int
    daemons: int
    bytes_sent: int
    bytes_received: int
    net_send_seconds: float
    net_recv_seconds: float


class SocketTaskEngine:
    """The master of the socket-backed distributed configuration.

    ``hosts`` is a spec string (see :func:`parse_hosts`) or a sequence
    of :class:`HostSpec`.  Spawned daemons are private to this engine
    and torn down by :meth:`close`; dialed daemons are left running.
    """

    def __init__(
        self,
        hosts="localhost:2",
        *,
        trace=None,
        heartbeat_timeout: float = 5.0,
        daemon_heartbeat_interval: float = 0.5,
        connect_timeout: float = 20.0,
        reconnect_backoff: float = 0.05,
        max_reconnects: int = 5,
        poll_interval: float = 0.02,
    ) -> None:
        self.host_specs = (
            parse_hosts(hosts) if isinstance(hosts, str) else tuple(hosts)
        )
        self.trace = trace
        self.heartbeat_timeout = heartbeat_timeout
        self.daemon_heartbeat_interval = daemon_heartbeat_interval
        self.connect_timeout = connect_timeout
        self.reconnect_backoff = reconnect_backoff
        self.max_reconnects = max_reconnects
        self.poll_interval = poll_interval
        self._events: Queue = Queue()
        self._closed = False
        self.reconnects = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.net_send_seconds = 0.0
        self.net_recv_seconds = 0.0
        self.links: list[_DaemonLink] = []
        t0 = time.perf_counter()
        try:
            index = 0
            for spec in self.host_specs:
                if spec.local:
                    for _ in range(spec.spawn):
                        link = _DaemonLink(f"daemon-{index}", spawned=True)
                        self._spawn(link)
                        self.links.append(link)
                        index += 1
                else:
                    link = _DaemonLink(
                        f"daemon-{index}",
                        spawned=False,
                        address=(spec.host, spec.port),
                    )
                    self._dial(link)
                    self.links.append(link)
                    index += 1
        except Exception:
            self.close()
            raise
        self.spawn_seconds = time.perf_counter() - t0

    # ------------------------------------------------------------------
    # link lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, link: _DaemonLink) -> None:
        """Fork a loopback daemon and connect to its announced port."""
        cmd = [
            sys.executable, "-m", "repro", "worker-daemon",
            "--port", "0",
            "--capacity", "1",
            "--heartbeat-interval", str(self.daemon_heartbeat_interval),
        ]
        proc = subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        port = None
        tail: deque[str] = deque(maxlen=8)
        while True:
            line = proc.stdout.readline()
            if not line:
                break
            tail.append(line.rstrip())
            if line.startswith("LISTENING "):
                port = int(line.split()[1])
                break
        if port is None:
            proc.wait(timeout=5.0)
            raise RuntimeError(
                f"{link.name} failed to start: " + " | ".join(tail)
            )
        link.proc = proc
        self._attach(link, ("127.0.0.1", port))

    def _dial(self, link: _DaemonLink) -> None:
        self._attach(link, link.address)

    def _attach(self, link: _DaemonLink, address: tuple[str, int]) -> None:
        """Connect the socket and start the link's reader thread."""
        sock = socket.create_connection(address, timeout=self.connect_timeout)
        sock.settimeout(None)
        link.sock = sock
        link.alive = True
        link.last_frame = time.monotonic()
        link.epoch += 1
        link.reader = threading.Thread(
            target=self._read_loop, args=(link, sock, link.epoch), daemon=True
        )
        link.reader.start()

    def _read_loop(
        self, link: _DaemonLink, sock: socket.socket, epoch: int
    ) -> None:
        try:
            while True:
                frame = recv_frame(sock)
                link.last_frame = time.monotonic()
                self._events.put((link, epoch, frame))
                if frame is None:
                    return
        except (FrameError, OSError) as exc:
            self._events.put(
                (link, epoch, ("__lost__", {"error": repr(exc)}, 0, 0.0))
            )

    def _detach(self, link: _DaemonLink) -> None:
        """Tear the link's socket/process down (writer guaranteed dead
        afterwards, so its leases are safe to reclaim)."""
        link.alive = False
        if link.sock is not None:
            # shutdown before close: the link's reader thread is blocked
            # in recv() on this fd, and close() alone would leave the
            # file description pinned by that syscall — no FIN reaches
            # the daemon (a dialed one would keep serving a dead
            # connection and never return to accept) and the reader
            # never wakes.  shutdown() does both deterministically.
            try:
                link.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                link.sock.close()
            except OSError:  # pragma: no cover - defensive
                pass
            link.sock = None
        if link.proc is not None:
            if link.proc.poll() is None:
                link.proc.kill()
            try:
                link.proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                pass
            if link.proc.stdout is not None:
                link.proc.stdout.close()
            link.proc = None
        if link.reader is not None:
            link.reader.join(timeout=2.0)
            link.reader = None

    def _revive(self, link: _DaemonLink, *, reason: str) -> bool:
        """Reconnect (or respawn) a lost daemon with exponential backoff;
        ``False`` once its reconnect budget is spent."""
        if self._closed or link.reconnects >= self.max_reconnects:
            return False
        link.reconnects += 1
        self.reconnects += 1
        backoff = self.reconnect_backoff * (2 ** (link.reconnects - 1))
        t0 = time.perf_counter()
        time.sleep(backoff)
        try:
            if link.spawned:
                self._spawn(link)
            else:
                self._dial(link)
        except (OSError, RuntimeError):
            return self._revive(link, reason=reason)
        link.capacity = 0  # re-learned from the fresh hello
        if self.trace is not None:
            self.trace.record(
                "reconnect",
                worker=link.name,
                attempt=link.reconnects,
                reason=reason,
                seconds=time.perf_counter() - t0,
            )
        return True

    @property
    def total_capacity(self) -> int:
        known = sum(link.capacity for link in self.links if link.alive)
        # before the hellos arrive, the spawned count is the best guess
        return known or sum(
            s.spawn if s.local else 1 for s in self.host_specs
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for link in self.links:
            if link.alive and link.sock is not None:
                try:
                    send_frame(link.sock, "stop", {})
                except (FrameError, OSError):
                    pass
            self._detach(link)

    def __enter__(self) -> "SocketTaskEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the dispatch loop
    # ------------------------------------------------------------------
    def run(
        self,
        ordered: list[SubsolveJobSpec],
        *,
        escalation,
        plan=None,
        use_cache: bool = True,
        cost_model=None,
        fault_log=None,
        sink=None,
        trace=None,
    ) -> NetOutcome:
        """Dispatch ``ordered`` (LPT order preserved) across the daemons.

        Mirrors the fork-pool resilient loop: per-job deadlines, fault
        escalation, idempotent completion keyed ``(l, m)`` — with the
        detection channels of a network: connection loss and heartbeat
        silence instead of PID liveness.
        """
        from repro.resilience import (
            EscalationStep,
            FaultEvent,
            FaultLog,
            FaultToleranceExhausted,
        )

        trace = trace if trace is not None else self.trace
        log = fault_log if fault_log is not None else FaultLog()
        retry, deadline_policy = escalation.retry, escalation.deadline
        ready: deque[tuple[SubsolveJobSpec, int]] = deque(
            (spec, 1) for spec in ordered
        )
        completed: dict[tuple[int, int], SubsolvePayload] = {}
        completion_order: list[tuple[int, int]] = []
        pending: dict[tuple[int, int], _NetPending] = {}
        recovered_keys: list[tuple[int, int]] = []
        fallback_keys: list[tuple[int, int]] = []
        attempts = 0

        def predicted(spec: SubsolveJobSpec) -> Optional[float]:
            if cost_model is None:
                return None
            return float(cost_model.predict_seconds(spec.l, spec.m, spec.tol))

        def record_net(kind: str, key, nbytes: int, seconds: float, **extra) -> None:
            if kind == "net_send":
                self.bytes_sent += nbytes
                self.net_send_seconds += seconds
            else:
                self.bytes_received += nbytes
                self.net_recv_seconds += seconds
            if trace is not None:
                trace.record(
                    kind, key=key, frame_bytes=nbytes, seconds=seconds, **extra
                )

        def submit(spec: SubsolveJobSpec, attempt: int, link: _DaemonLink) -> bool:
            nonlocal attempts
            key = (spec.l, spec.m)
            lease = (
                sink.lease_for(spec)
                if sink is not None and link.shm_ok
                else None
            )
            try:
                nbytes, seconds = send_frame(link.sock, "job", {
                    "spec": spec,
                    "plan": plan,
                    "attempt": attempt,
                    "use_cache": use_cache,
                    "lease": lease,
                })
            except (FrameError, OSError) as exc:
                if lease is not None:
                    sink.plane.revoke(lease.name, reason="send-failed")
                ready.appendleft((spec, attempt))
                lose_link(
                    link,
                    kind="crash",
                    detected_by="connection",
                    error=repr(exc),
                )
                return False
            attempts += 1
            now = time.monotonic()
            if trace is not None:
                trace.record(
                    "job_submit", key=key, worker=link.name, attempt=attempt
                )
            record_net("net_send", key, nbytes, seconds, frame_kind="job")
            pending[key] = _NetPending(
                spec=spec,
                attempt=attempt,
                link=link,
                deadline_at=now + deadline_policy.deadline_seconds(predicted(spec)),
                submitted_at=now,
                lease=lease,
            )
            link.inflight[key] = pending[key]
            return True

        def dispatch_ready() -> None:
            while ready:
                link = next(
                    (
                        l
                        for l in self.links
                        if l.alive and l.sock is not None and l.free_slots > 0
                    ),
                    None,
                )
                if link is None:
                    return
                spec, attempt = ready.popleft()
                submit(spec, attempt, link)

        def complete(key, attempt: int, payload: SubsolvePayload) -> None:
            from repro.perf.dataplane import DataPlaneError, StaleLeaseError

            job = pending.get(key)
            if job is None or job.attempt != attempt:
                return  # a stale replay from a daemon declared lost
            if sink is not None:
                try:
                    sink.consume(key, payload, attempt=attempt)
                except StaleLeaseError as exc:
                    handle_fault(
                        key, "stale", detected_by="dataplane", error=repr(exc)
                    )
                    return
                except DataPlaneError as exc:
                    handle_fault(
                        key,
                        "transport",
                        detected_by="dataplane",
                        error=repr(exc),
                    )
                    return
            del pending[key]
            job.link.inflight.pop(key, None)
            completed[key] = payload
            completion_order.append(key)
            from .parallel import _trace_payload

            _trace_payload(trace, payload, attempt=attempt)
            if job.attempt > 1 and key not in recovered_keys:
                recovered_keys.append(key)

        def fail_run(cause: Optional[BaseException] = None) -> None:
            report = log.report(
                recovered_keys=recovered_keys,
                fallback_keys=fallback_keys,
                failed_key=log.events()[-1].key if len(log) else None,
            )
            raise FaultToleranceExhausted(report) from cause

        def handle_fault(key, kind: str, detected_by: str, error: str = "") -> None:
            job = pending.pop(key)
            job.link.inflight.pop(key, None)
            if sink is not None and job.lease is not None:
                # safe unconditionally: every faulting path either ends
                # with the daemon process dead (crash/hang/deadline kill
                # it in lose_link) or with a daemon that never wrote
                # (error frame, refused descriptor)
                sink.plane.revoke(job.lease.name, reason=kind)
            step = escalation.decide(job.attempt, kind)
            event = FaultEvent(
                key=key,
                kind=kind,
                attempt=job.attempt,
                action=step.value,
                detected_by=detected_by,
                error=error,
                seconds_lost=time.monotonic() - job.submitted_at,
            )
            log.record(event)
            if trace is not None:
                trace.record_fault(event)
            if step in (EscalationStep.RETRY, EscalationStep.REASSIGN):
                time.sleep(retry.delay_seconds(job.attempt, key))
                if trace is not None:
                    trace.record(
                        "retry", key=key, attempt=job.attempt + 1, cause=kind
                    )
                ready.appendleft((job.spec, job.attempt + 1))
            elif step is EscalationStep.FALLBACK:
                # graceful degradation: the master computes the grid
                # itself, sequentially and without injection; never
                # through the data plane (no lease, no descriptor)
                try:
                    payload = execute_job(job.spec, use_cache=use_cache)
                except Exception as exc:
                    log.record(
                        FaultEvent(
                            key=key,
                            kind="exception",
                            attempt=job.attempt,
                            action="fail",
                            detected_by="fallback",
                            error=repr(exc),
                        )
                    )
                    fail_run(exc)
                if sink is not None:
                    sink.consume(key, payload, attempt=job.attempt + 1)
                completed[key] = payload
                completion_order.append(key)
                fallback_keys.append(key)
                if trace is not None:
                    trace.record(
                        "fallback", key=key, attempt=job.attempt, cause=kind
                    )
                    from .parallel import _trace_payload

                    _trace_payload(
                        trace, payload, attempt=job.attempt + 1, fallback=True
                    )
                if key not in recovered_keys:
                    recovered_keys.append(key)
            else:  # EscalationStep.FAIL
                fail_run()

        def lose_link(
            link: _DaemonLink,
            *,
            kind: str,
            detected_by: str,
            error: str,
            culprit=None,
        ) -> None:
            """A daemon died, went silent, or wedged one job: kill it,
            fault the culprit (or everything in flight), re-queue the
            collateral at its same attempt, then revive the daemon."""
            if not link.alive:
                return
            self._detach(link)
            for key in list(link.inflight):
                job = link.inflight[key]
                if culprit is None or key == culprit:
                    handle_fault(key, kind, detected_by=detected_by, error=error)
                else:
                    # collateral of a daemon replacement: not the job's
                    # fault, so no escalation step is consumed
                    link.inflight.pop(key, None)
                    pending.pop(key, None)
                    if sink is not None and job.lease is not None:
                        sink.plane.revoke(job.lease.name, reason="collateral")
                    ready.appendleft((job.spec, job.attempt))
            link.inflight.clear()
            if not self._revive(link, reason=kind):
                if not any(l.alive for l in self.links) and (pending or ready):
                    fail_run(
                        RuntimeError(
                            "every worker daemon is lost and out of "
                            "reconnect budget"
                        )
                    )

        def handle_event(link: _DaemonLink, epoch: int, frame) -> None:
            if epoch != link.epoch:
                # the last gasp of a connection already replaced (its
                # reader racing the revive): whatever it says — EOF,
                # error, even a late result — the daemon it speaks for
                # was already declared dead and its jobs re-dispatched
                return
            if frame is None:
                lose_link(
                    link,
                    kind="crash",
                    detected_by="connection",
                    error="daemon closed the connection",
                )
                return
            kind, data, nbytes, seconds = frame
            if kind == "__lost__":
                lose_link(
                    link,
                    kind="crash",
                    detected_by="connection",
                    error=data["error"],
                )
                return
            if kind == "hello":
                link.capacity = int(data["capacity"])
                link.pid = data.get("pid")
                if trace is not None:
                    trace.record(
                        "worker_spawn", worker=link.name, pid=link.pid
                    )
                return
            if kind == "heartbeat":
                return  # last_frame was already bumped by the reader
            if kind == "result":
                key = tuple(data["key"])
                record_net(
                    "net_recv", key, nbytes, seconds, frame_kind="result"
                )
                complete(key, int(data["attempt"]), data["payload"])
                return
            if kind == "error":
                key = tuple(data["key"])
                record_net(
                    "net_recv", key, nbytes, seconds, frame_kind="error"
                )
                job = pending.get(key)
                if job is not None and job.attempt == int(data["attempt"]):
                    handle_fault(
                        key,
                        data.get("fault_kind", "exception"),
                        detected_by="daemon",
                        error=data.get("error", ""),
                    )

        while pending or ready:
            if not any(l.alive for l in self.links):
                fail_run(RuntimeError("no worker daemon is alive"))
            dispatch_ready()
            try:
                link, epoch, frame = self._events.get(
                    timeout=self.poll_interval
                )
            except Empty:
                pass
            else:
                handle_event(link, epoch, frame)
                while True:  # drain without blocking
                    try:
                        link, epoch, frame = self._events.get_nowait()
                    except Empty:
                        break
                    handle_event(link, epoch, frame)
            now = time.monotonic()
            for link in self.links:
                if (
                    link.alive
                    and link.inflight
                    and now - link.last_frame > self.heartbeat_timeout
                ):
                    lose_link(
                        link,
                        kind="hang",
                        detected_by="heartbeat",
                        error=(
                            f"no frame from {link.name} within "
                            f"{self.heartbeat_timeout:.1f}s"
                        ),
                    )
            now = time.monotonic()
            for key in list(pending):
                job = pending.get(key)
                if job is None or now < job.deadline_at:
                    continue
                lose_link(
                    job.link,
                    kind="deadline",
                    detected_by="deadline",
                    error=(
                        f"no result within "
                        f"{job.deadline_at - job.submitted_at:.2f}s"
                    ),
                    culprit=key,
                )

        return NetOutcome(
            payloads=completed,
            completion_order=tuple(completion_order),
            attempts=attempts,
            events=tuple(log.events()),
            recovered_keys=tuple(recovered_keys),
            fallback_keys=tuple(fallback_keys),
            reconnects=self.reconnects,
            daemons=len(self.links),
            bytes_sent=self.bytes_sent,
            bytes_received=self.bytes_received,
            net_send_seconds=self.net_send_seconds,
            net_recv_seconds=self.net_recv_seconds,
        )
