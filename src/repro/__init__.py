"""Reproduction of *Modernizing Existing Software: A Case Study*
(Everaars, Arbab, Koren — SC 2004).

Subpackages:

* :mod:`repro.manifold` — the MANIFOLD/IWIM coordination runtime;
* :mod:`repro.protocol` — the generic master/worker protocol
  (``protocolMW.m``) and the §4.3 behaviour interfaces;
* :mod:`repro.sparsegrid` — the legacy application: a sparse-grid
  (combination-technique) advection–diffusion solver;
* :mod:`repro.restructured` — the restructured concurrent application
  (``mainprog.m``) plus real multiprocessing execution;
* :mod:`repro.cluster` — the simulated 32-machine heterogeneous cluster
  of the paper's evaluation;
* :mod:`repro.perf` — cost calibration, timing, overhead decomposition;
* :mod:`repro.harness` — regeneration of Table 1 and Figures 1–5.

Quickstart::

    from repro.sparsegrid import SequentialApplication
    from repro.restructured import run_concurrent

    seq = SequentialApplication(root=2, level=3, tol=1e-3).run()
    conc, _ = run_concurrent(root=2, level=3, tol=1e-3)
    assert (seq.combined == conc.combined).all()   # identical results
"""

__version__ = "0.1.0"

__all__ = [
    "cluster",
    "harness",
    "manifold",
    "perf",
    "protocol",
    "restructured",
    "sparsegrid",
]
