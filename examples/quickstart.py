#!/usr/bin/env python
"""Quickstart: the paper's story in sixty seconds.

1. Run the *sequential* legacy application (root=2, level=3, tol=1e-3):
   a sparse-grid advection-diffusion solve over 7 grids.
2. Run the *restructured* concurrent version: the same program with its
   nested loop delegated to a pool of workers through the MANIFOLD
   master/worker protocol.
3. Check the two produce bitwise-identical results and show where the
   time went.

Usage::

    python examples/quickstart.py [level] [tol]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.restructured import run_concurrent
from repro.restructured.mainprog import DEFAULT_MLINK
from repro.sparsegrid import SequentialApplication


def main() -> int:
    level = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    tol = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0e-3

    print(f"== sequential run: root=2 level={level} tol={tol:g} ==")
    seq = SequentialApplication(root=2, level=level, tol=tol).run()
    print(f"grids solved: {seq.n_grids} (the paper's w = 2*level+1)")
    for (l, m), seconds in sorted(seq.grid_seconds.items()):
        print(f"  subsolve({l},{m}): {seconds:8.3f}s")
    print(f"prolongation: {seq.prolongation_seconds:.3f}s")
    print(f"total: {seq.total_seconds:.3f}s")

    print()
    print("== restructured (master/worker protocol) run ==")
    conc, tasks = run_concurrent(
        root=2, level=level, tol=tol, link_spec_text=DEFAULT_MLINK, timeout=600
    )
    print(f"workers used: {conc.n_workers}")
    print(f"total: {conc.total_seconds:.3f}s "
          f"(pool {conc.pool_seconds:.3f}s, "
          f"prolongation {conc.prolongation_seconds:.3f}s)")
    if tasks is not None:
        print(f"task instances ever forked: {len(tasks.instances())}, "
              f"peak alive: {tasks.peak_instances()}")

    identical = np.array_equal(seq.combined, conc.combined)
    print()
    print(f"results bitwise identical: {identical}")
    if not identical:
        print("ERROR: the restructuring changed the numerics!", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
