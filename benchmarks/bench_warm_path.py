"""Warm-path execution layer: the cold/warm ratio and dispatch makespan.

The seed's real-parallel path (E8) paid three coordination taxes on
every call: a fresh fork pool, from-scratch operator assembly in every
worker, and ``pool.map`` static chunking that dispatches the heavy
diagonal last.  This bench measures what the warm execution layer —
persistent pool + process-local operator/factor cache + cost-ordered
``imap_unordered`` dispatch — buys back, and asserts the paper-grade
invariant that none of it changes a single bit of the answer.

Runs in a fast smoke mode inside the tier-1 suite (so the cold/warm
ratio lands in every bench JSON trajectory via ``extra_info``); set
``REPRO_WARM_PATH_FULL=1`` for the full measurement.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.perf.warmpath import dispatch_makespan
from repro.restructured import run_multiprocessing, shutdown_pool
from repro.sparsegrid import SequentialApplication

ROOT = 2


def _cold_run(level: float, tol: float):
    """The seed behaviour: throwaway pool, static chunking, no reuse."""
    return run_multiprocessing(
        root=ROOT, level=level, tol=tol,
        warm_pool=False, operator_cache=False, dispatch="static",
    )


def _warm_run(level: float, tol: float):
    return run_multiprocessing(root=ROOT, level=level, tol=tol)


@pytest.mark.benchmark(group="warm-path")
def test_cold_vs_warm_ratio(benchmark, warm_path_settings):
    """Warm repeat runs (pool + operator cache hot) vs the seed cold
    path, bitwise-identity asserted on both."""
    import time

    level, tol = warm_path_settings["level"], warm_path_settings["tol"]
    sequential = SequentialApplication(root=ROOT, level=level, tol=tol).run()

    # drop any pool/caches a previous test left warm, then measure the
    # seed path; min-of-rounds on both sides resists multi-user noise
    shutdown_pool()
    cold_samples, cold_result = [], None
    for _ in range(warm_path_settings["cold_rounds"]):
        started = time.perf_counter()
        cold_result = _cold_run(level, tol)
        cold_samples.append(time.perf_counter() - started)
    assert np.array_equal(cold_result.combined, sequential.combined)

    shutdown_pool()
    warmup = _warm_run(level, tol)  # pays the fork + first assembly
    assert not warmup.warm_pool

    result = benchmark.pedantic(
        lambda: _warm_run(level, tol),
        rounds=warm_path_settings["warm_rounds"],
        iterations=1,
    )
    assert np.array_equal(result.combined, sequential.combined)
    assert result.warm_pool
    # caches are per worker process; with one worker every request hits,
    # with several a job may land on a worker that has not seen its grid
    if result.processes == 1:
        assert result.operator_cache_hit_ratio == 1.0
    else:
        assert result.operator_cache_hits > 0

    cold = min(cold_samples)
    warm = min(benchmark.stats.stats.data)
    ratio = cold / warm
    benchmark.extra_info["cold_seconds"] = cold
    benchmark.extra_info["warm_seconds"] = warm
    benchmark.extra_info["cold_warm_ratio"] = ratio
    benchmark.extra_info["operator_cache_hit_ratio"] = (
        result.operator_cache_hit_ratio
    )
    benchmark.extra_info["factor_reuse_ratio"] = result.factor_reuse_ratio
    print(f"\nwarm path: cold {cold:.3f}s warm {warm:.3f}s "
          f"ratio {ratio:.2f}x (factor reuse "
          f"{result.factor_reuse_ratio:.2f})")
    assert ratio >= 1.5, (
        f"warm path must be >= 1.5x faster than the seed cold path, "
        f"got {ratio:.2f}x"
    )


@pytest.mark.benchmark(group="warm-path")
def test_longest_first_beats_static_chunk_makespan(benchmark, warm_path_settings):
    """The dispatch-order makespan metric on the level->=6 grid family:
    longest-predicted-first greedy dispatch vs ``pool.map`` static
    chunking, scored on the run's own measured per-grid durations."""
    level = warm_path_settings["makespan_level"]
    tol = warm_path_settings["makespan_tol"]
    workers = warm_path_settings["makespan_workers"]

    _warm_run(level, tol)  # warm the caches so durations are steady
    result = benchmark.pedantic(
        lambda: _warm_run(level, tol), rounds=2, iterations=1
    )
    assert result.dispatch == "longest-first"

    span = dispatch_makespan(result, n_workers=workers)
    benchmark.extra_info["makespan_dispatched"] = span.dispatched_seconds
    benchmark.extra_info["makespan_static_chunk"] = span.static_chunk_seconds
    benchmark.extra_info["makespan_gain"] = span.gain_over_static
    print(f"\nmakespan @{workers} workers: longest-first "
          f"{span.dispatched_seconds:.3f}s vs static chunk "
          f"{span.static_chunk_seconds:.3f}s "
          f"(gain {span.gain_over_static:.2f}x)")
    assert span.dispatched_seconds < span.static_chunk_seconds, (
        "longest-first dispatch must beat pool.map static chunking on "
        f"makespan: {span.dispatched_seconds:.4f}s vs "
        f"{span.static_chunk_seconds:.4f}s"
    )


@pytest.mark.benchmark(group="warm-path")
def test_pool_persists_across_runs(benchmark):
    """Two consecutive runs share one pool generation — the second
    acquisition is warm."""
    shutdown_pool()
    first = run_multiprocessing(root=ROOT, level=2, tol=1.0e-3)
    second = benchmark.pedantic(
        lambda: run_multiprocessing(root=ROOT, level=2, tol=1.0e-3),
        rounds=1,
        iterations=1,
    )
    assert not first.warm_pool
    assert second.warm_pool
    benchmark.extra_info["pool_cold_start_seconds"] = (
        first.pool_cold_start_seconds
    )
