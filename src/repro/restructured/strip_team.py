"""A process team running one grid's strips over the shm data plane.

The serial and thread executors in :mod:`repro.sparsegrid.decompose`
keep the strips in one address space; this module is the *distributed*
variant the tentpole asks for: one forked child per strip, halo and
interface vectors moving through the existing
:class:`~repro.perf.dataplane.DataPlane` instead of pickles, and the
fault ladder's discipline applied at strip granularity — a lost strip
is re-dispatched like a lost subsolve, without touching the plane's
generation (the ``StaleLeaseError`` rules are unchanged; strip leases
belong to the team, stay leased across the respawn, and the replacement
child simply attaches the same blocks).

Wire protocol per strip (all leases from the master's plane, written
with :func:`~repro.perf.dataplane.write_through_lease` and read with
:meth:`~repro.perf.dataplane.DataPlane.attach` /
:func:`~repro.perf.dataplane.read_descriptor`):

======== ======== ==============================================
lease    writer   payload
======== ======== ==============================================
``f``    master   the strip's right-hand-side slice (forward)
``xg``   master   the strip's interface solution slice (backward)
``halo`` child    the strip's interface contribution ``A_gs y``
``x``    child    the strip solution slice
``piece``child    the strip's dense Schur piece (prepare)
======== ======== ==============================================

Only tiny command tuples and :class:`ShmDescriptor` records cross the
pipes; the vectors never do.

**Determinism & recovery.**  Each child is a pure function of
``(blocks, h, f)``: respawning one and replaying ``prepare(current_h)``
plus the in-flight operation reproduces bit-identical results, so a
crash-mid-strip run matches the fault-free run exactly — the chaos test
asserts this.  ``fault_injections={strip_id: die_after}`` makes child
``strip_id`` call ``os._exit`` *before* executing its ``die_after``-th
operation, which is how the tests schedule deterministic crashes.
"""

from __future__ import annotations

import os
import pickle
import time
from multiprocessing import Pipe, Process, connection
from typing import Optional, Sequence

import numpy as np

from repro.perf.dataplane import (
    DataPlane,
    ShmDescriptor,
    ShmLease,
    read_descriptor,
    write_through_lease,
)
from repro.trace.recorder import emit as trace_emit

__all__ = ["StripProcessTeam", "StripTeamError"]

#: overall deadline for one team operation (generous: covers a respawn
#: plus a full factorization on the largest grids)
_OP_DEADLINE_SECONDS = 120.0


class StripTeamError(RuntimeError):
    """The team could not complete an operation (deadline, repeated
    child deaths, protocol violation)."""


def _child_main(
    strip_id: int,
    conn: connection.Connection,
    blocks_blob: bytes,
    gamma: float,
    leases: dict,
    die_after: Optional[int],
) -> None:
    """The strip child's command loop (runs in the forked process).

    ``blocks_blob`` carries the strip's sparse blocks (pickled once at
    spawn); factors for recent ``h`` values are kept in a small local
    cache so hold-band oscillation does not refactor.
    """
    import scipy.sparse as sp
    import scipy.sparse.linalg as spla

    J_ss, B, C, _cols = pickle.loads(blocks_blob)
    n = J_ss.shape[0]
    identity = sp.identity(n, format="csc")
    factors: dict[float, tuple] = {}  # h -> (lu, W, piece)
    current: Optional[tuple] = None
    current_h: Optional[float] = None
    y: Optional[np.ndarray] = None
    ops_done = 0
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            break
        cmd = msg[0]
        if cmd == "exit":
            break
        if die_after is not None and ops_done >= die_after:
            os._exit(17)
        ops_done += 1
        started = time.perf_counter()
        if cmd == "prepare":
            h = msg[1]
            entry = factors.get(h)
            fresh = entry is None
            if fresh:
                scale = -gamma * h
                lu = spla.splu((identity - (gamma * h) * J_ss).tocsc())
                W = np.atleast_2d(
                    np.asarray(lu.solve(scale * np.asarray(B.todense())))
                )
                if W.shape[0] != n:  # pragma: no cover - 1-col edge
                    W = W.reshape(n, -1)
                piece = scale * np.asarray(C @ W)
                entry = (lu, W, piece)
                while len(factors) >= 4:
                    factors.pop(next(iter(factors)))
                factors[h] = entry
            current = entry
            current_h = h
            descriptor = write_through_lease(leases["piece"], entry[2])
            conn.send(
                ("piece", descriptor, time.perf_counter() - started, fresh)
            )
        elif cmd == "forward":
            f_descriptor = msg[1]
            f_s = read_descriptor(f_descriptor)
            lu = current[0]
            y = lu.solve(f_s)
            halo = (-gamma * current_h) * (C @ y)
            descriptor = write_through_lease(leases["halo"], halo)
            conn.send(("halo", descriptor, time.perf_counter() - started))
        elif cmd == "backward":
            xg_descriptor = msg[1]
            xg_sub = read_descriptor(xg_descriptor)
            x = y - current[1] @ xg_sub
            descriptor = write_through_lease(leases["x"], x)
            conn.send(("x", descriptor, time.perf_counter() - started))
        else:  # pragma: no cover - protocol violation
            conn.send(("error", f"unknown command {cmd!r}"))
    conn.close()


class StripProcessTeam:
    """A strip executor backed by one forked child per strip.

    Satisfies the executor protocol of
    :class:`~repro.sparsegrid.decompose.SchurSplitSolver`
    (``start``/``prepare``/``forward``/``backward``/``close`` plus a
    ``respawns`` counter).  ``plane`` may be shared with the enclosing
    run or omitted, in which case the team owns a private plane and
    closes it (with the usual zero-leak audit) on :meth:`close`.
    """

    kind = "team"

    def __init__(
        self,
        *,
        plane: Optional[DataPlane] = None,
        fault_injections: Optional[dict[int, int]] = None,
        op_deadline: float = _OP_DEADLINE_SECONDS,
    ) -> None:
        self._own_plane = plane is None
        self.plane = plane if plane is not None else DataPlane()
        self.fault_injections = dict(fault_injections or {})
        self.op_deadline = op_deadline
        self.respawns = 0
        self.trace_key: Optional[tuple] = None
        self._children: list[Optional[Process]] = []
        self._conns: list[Optional[connection.Connection]] = []
        self._blobs: list[bytes] = []
        self._leases: list[dict[str, ShmLease]] = []
        self._gamma: Optional[float] = None
        self._current_h: Optional[float] = None
        #: last rhs slices sent, retained for crash replay
        self._last_f: list[Optional[np.ndarray]] = []
        self._in_backward: list[bool] = []
        self._closed = False

    # ------------------------------------------------------------------
    def start(self, workers: Sequence) -> None:
        self._workers_meta = []
        for w in workers:
            blob = pickle.dumps(
                (w.J_ss, w.B, w.C, w.cols), protocol=pickle.HIGHEST_PROTOCOL
            )
            self._blobs.append(blob)
            g = w.C.shape[0]
            c_s = int(w.cols.size)
            leases = {
                "f": self.plane.lease(("strip", w.strip_id, "f"), w.n * 8),
                "halo": self.plane.lease(
                    ("strip", w.strip_id, "halo"), max(1, g) * 8
                ),
                "xg": self.plane.lease(
                    ("strip", w.strip_id, "xg"), max(1, c_s) * 8
                ),
                "x": self.plane.lease(("strip", w.strip_id, "x"), w.n * 8),
                "piece": self.plane.lease(
                    ("strip", w.strip_id, "piece"), max(1, g * c_s) * 8
                ),
            }
            self._leases.append(leases)
            self._gamma = w.gamma
            self._last_f.append(None)
            self._in_backward.append(False)
            self._children.append(None)
            self._conns.append(None)
            self._spawn(w.strip_id, fresh=False)

    def _spawn(self, strip_id: int, *, fresh: bool) -> None:
        """Fork (or re-fork) the child for ``strip_id``."""
        parent_conn, child_conn = Pipe()
        die_after = None if fresh else self.fault_injections.get(strip_id)
        child = Process(
            target=_child_main,
            args=(
                strip_id,
                child_conn,
                self._blobs[strip_id],
                self._gamma,
                self._leases[strip_id],
                die_after,
            ),
            daemon=True,
            name=f"strip-{strip_id}",
        )
        child.start()
        child_conn.close()
        old = self._conns[strip_id]
        if old is not None:
            old.close()
        self._children[strip_id] = child
        self._conns[strip_id] = parent_conn

    # ------------------------------------------------------------------
    # plumbing: send a command, await the reply, recover from a crash
    # ------------------------------------------------------------------
    def _master_write(self, lease: ShmLease, array: np.ndarray) -> ShmDescriptor:
        descriptor = write_through_lease(lease, np.ascontiguousarray(array))
        if descriptor is None:  # pragma: no cover - sized at start()
            raise StripTeamError(
                f"master payload outgrew lease {lease.name!r}"
            )
        return descriptor

    def _recv(self, strip_id: int, deadline: float):
        """Await one reply; on child death, respawn + replay and retry."""
        conn = self._conns[strip_id]
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise StripTeamError(
                    f"strip {strip_id} exceeded the "
                    f"{self.op_deadline:.0f}s operation deadline"
                )
            if conn.poll(min(0.05, max(0.001, remaining))):
                try:
                    return conn.recv()
                except EOFError:
                    pass  # died between poll and recv: fall through
            child = self._children[strip_id]
            if child is not None and not child.is_alive():
                self._recover(strip_id)
                conn = self._conns[strip_id]

    def _recover(self, strip_id: int) -> None:
        """Respawn a dead strip child and replay its state.

        The replacement recomputes the strip factor for the current
        ``h`` (bit-identical: ``splu`` is deterministic) and, when the
        lost operation had a forward solve in flight or already behind
        it, re-runs ``forward`` with the retained rhs slice.  The
        in-flight command itself is re-issued by the caller's pending
        ``_recv`` loop — the reply it eventually reads comes from the
        replay below.
        """
        child = self._children[strip_id]
        exitcode = child.exitcode if child is not None else None
        self.respawns += 1
        trace_emit(
            "respawn",
            key=self.trace_key,
            worker=f"strip-{strip_id}",
            strip=strip_id,
            exitcode=exitcode,
            scope="strip",
        )
        self._spawn(strip_id, fresh=True)
        conn = self._conns[strip_id]
        deadline = time.monotonic() + self.op_deadline
        cmd = self._pending[strip_id]
        if cmd is not None and cmd[0] == "prepare":
            # the lost operation *was* the factor build: re-issuing it
            # is the whole replay, and its reply feeds the caller
            conn.send(cmd)
            return
        # replay factor state (bit-identical: splu is deterministic)
        if self._current_h is not None:
            conn.send(("prepare", self._current_h))
            self._await_plain(conn, strip_id, deadline)
        if cmd is not None:
            # replay the forward pass when the crash interrupted the
            # forward/backward pair (y lives only in the child)
            f_s = self._last_f[strip_id]
            if cmd[0] == "backward" and f_s is not None:
                f_descriptor = self._master_write(
                    self._leases[strip_id]["f"], f_s
                )
                conn.send(("forward", f_descriptor))
                self._await_plain(conn, strip_id, deadline)
            # re-issue the lost command; its reply is what the caller's
            # _recv loop will read next
            conn.send(cmd)

    def _await_plain(self, conn, strip_id: int, deadline: float):
        """Await a reply during replay (no recursive recovery: a child
        dying twice in a row during recovery is escalated)."""
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise StripTeamError(
                    f"strip {strip_id} wedged during recovery"
                )
            if conn.poll(min(0.05, max(0.001, remaining))):
                try:
                    return conn.recv()
                except EOFError:
                    raise StripTeamError(
                        f"strip {strip_id} died again during recovery"
                    )
            child = self._children[strip_id]
            if child is not None and not child.is_alive():
                raise StripTeamError(
                    f"strip {strip_id} died again during recovery"
                )

    def _roundtrip(self, commands: list[tuple]) -> list[tuple]:
        """Send one command per strip, gather the replies in strip order."""
        self._pending = list(commands)
        deadline = time.monotonic() + self.op_deadline
        for conn, cmd in zip(self._conns, commands):
            conn.send(cmd)
        replies = []
        for strip_id in range(len(commands)):
            replies.append(self._recv(strip_id, deadline))
            self._pending[strip_id] = None
        return replies

    # ------------------------------------------------------------------
    # the executor protocol
    # ------------------------------------------------------------------
    def prepare(self, h: float):
        self._current_h = h
        replies = self._roundtrip([("prepare", h)] * len(self._conns))
        out = []
        for reply in replies:
            _tag, descriptor, seconds, fresh = reply
            piece = read_descriptor(descriptor)
            out.append((piece, seconds, fresh))
        return out

    def forward(self, parts: Sequence[np.ndarray]):
        commands = []
        for strip_id, f_s in enumerate(parts):
            f_s = np.ascontiguousarray(np.asarray(f_s, dtype=float))
            self._last_f[strip_id] = f_s
            descriptor = self._master_write(self._leases[strip_id]["f"], f_s)
            commands.append(("forward", descriptor))
        replies = self._roundtrip(commands)
        out = []
        for reply in replies:
            _tag, descriptor, seconds = reply
            out.append((read_descriptor(descriptor), seconds))
        return out

    def backward(self, parts: Sequence[np.ndarray]):
        commands = []
        for strip_id, xg_sub in enumerate(parts):
            descriptor = self._master_write(
                self._leases[strip_id]["xg"],
                np.ascontiguousarray(np.asarray(xg_sub, dtype=float)),
            )
            commands.append(("backward", descriptor))
        replies = self._roundtrip(commands)
        out = []
        for strip_id, reply in enumerate(replies):
            _tag, descriptor, seconds = reply
            out.append((read_descriptor(descriptor), seconds))
            self._last_f[strip_id] = None
        return out

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn, child in zip(self._conns, self._children):
            if conn is not None:
                try:
                    conn.send(("exit",))
                except (BrokenPipeError, OSError):
                    pass
        for conn, child in zip(self._conns, self._children):
            if child is not None:
                child.join(timeout=5.0)
                if child.is_alive():  # pragma: no cover - wedged child
                    child.terminate()
                    child.join(timeout=5.0)
            if conn is not None:
                conn.close()
        for leases in self._leases:
            for lease in leases.values():
                self.plane.release(lease.name)
        if self._own_plane:
            self.plane.close()
