"""Sharded (split) jobs through the execution layers.

Covers the split map resolution, the end-to-end ``run_multiprocessing``
split path (tolerance-equivalent to the unsplit run, observability
fields populated, trace aggregates emitted), the shm-backed strip
process team — including the chaos case: a worker crash mid-strip is
recovered by re-dispatching just that strip, and the recovered run is
bitwise identical to a fault-free split run — and the cost-model side
(split records stay out of the wall calibration, ``plan_split``
decides when sharding beats packing).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.perf.bridge import records_from_run
from repro.perf.costmodel import CostModel
from repro.restructured.parallel import (
    resolve_split_map,
    run_multiprocessing,
)
from repro.restructured.strip_team import StripProcessTeam
from repro.restructured.worker import SubsolveJobSpec, execute_job
from repro.sparsegrid.decompose import StripPlan, split_tolerance
from repro.sparsegrid.grid import Grid
from repro.sparsegrid.registry import make_problem
from repro.sparsegrid.subsolve import subsolve
from repro.trace import TraceRecorder
from tests.conftest import synthetic_records

ROOT = 2
TOL = 1.0e-3


def make_specs(level: int = 4) -> list[SubsolveJobSpec]:
    from repro.sparsegrid.grid import nested_loop_grids

    return [
        SubsolveJobSpec(
            problem_name="rotating-cone", root=ROOT, l=g.l, m=g.m,
            tol=TOL, t_end=0.1,
        )
        for g in nested_loop_grids(ROOT, level)
    ]


# ----------------------------------------------------------------------
# the split map
# ----------------------------------------------------------------------
class TestResolveSplitMap:
    def test_off_splits_nothing(self):
        assert resolve_split_map(
            "off", make_specs(), level=4, tol=TOL, n_workers=4
        ) == {}

    def test_single_worker_splits_nothing(self):
        assert resolve_split_map(
            2, make_specs(), level=4, tol=TOL, n_workers=1
        ) == {}

    def test_k_one_splits_nothing(self):
        assert resolve_split_map(
            1, make_specs(), level=4, tol=TOL, n_workers=4
        ) == {}

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            resolve_split_map(0, make_specs(), level=4, tol=TOL, n_workers=4)

    def test_integer_k_targets_head_of_line_grids(self):
        specs = make_specs(4)
        split_map = resolve_split_map(
            2, specs, level=4, tol=TOL, n_workers=4
        )
        top = max(s.grid.n_interior for s in specs)
        assert split_map
        for key, k in split_map.items():
            assert k == 2
            grid = Grid(ROOT, *key)
            assert grid.n_interior == top
        assert set(split_map) == {
            (s.l, s.m) for s in specs if s.grid.n_interior == top
        }

    def test_auto_without_model_falls_back_to_structural(self):
        specs = make_specs(4)
        auto = resolve_split_map("auto", specs, level=4, tol=TOL, n_workers=4)
        assert auto == resolve_split_map(
            2, specs, level=4, tol=TOL, n_workers=4
        )

    def test_auto_uses_cost_model_plan(self):
        class FakeModel:
            def plan_split(self, level, tol, *, n_workers):
                return {(2, 2): 4}

        assert resolve_split_map(
            "auto", make_specs(), level=4, tol=TOL, n_workers=4,
            cost_model=FakeModel(),
        ) == {(2, 2): 4}


# ----------------------------------------------------------------------
# sharded specs through the worker
# ----------------------------------------------------------------------
class TestSplitJobSpec:
    def test_spec_split_k_defaults_to_one(self):
        spec = make_specs()[0]
        assert spec.split_k == 1

    def test_execute_job_honours_split_k(self):
        from dataclasses import replace

        base = [s for s in make_specs() if (s.l, s.m) == (2, 2)][0]
        plain = execute_job(base)
        split = execute_job(replace(base, split_k=2))
        assert plain.split_k == 1
        assert split.split_k == 2
        assert split.halo_exchanges > 0
        assert split.halo_bytes > 0
        diff = float(np.max(np.abs(split.solution - plain.solution)))
        assert diff <= split_tolerance(TOL)


# ----------------------------------------------------------------------
# end to end through the pool
# ----------------------------------------------------------------------
class TestRunMultiprocessingSplit:
    @pytest.fixture(scope="class")
    def unsplit(self):
        return run_multiprocessing(
            root=ROOT, level=4, tol=TOL, processes=2, split="off"
        )

    @pytest.fixture(scope="class")
    def split(self):
        recorder = TraceRecorder()
        result = run_multiprocessing(
            root=ROOT, level=4, tol=TOL, processes=2, split=2,
            trace=recorder,
        )
        return result, recorder

    def test_split_matches_unsplit_within_tolerance(self, unsplit, split):
        result, _ = split
        diff = float(np.max(np.abs(result.combined - unsplit.combined)))
        assert diff <= split_tolerance(TOL)

    def test_split_observability_fields(self, unsplit, split):
        result, _ = split
        assert result.split == "k=2"
        assert result.split_grids
        assert all(k == 2 for _key, k in result.split_grids)
        assert result.split_payloads
        assert result.halo_exchanges > 0
        assert result.halo_bytes > 0
        assert unsplit.split == "off"
        assert unsplit.split_grids == ()
        assert unsplit.halo_exchanges == 0

    def test_split_payload_counters(self, split):
        result, _ = split
        split_keys = {key for key, _k in result.split_grids}
        for key in split_keys:
            payload = result.payloads[key]
            assert payload.split_k == 2
            assert payload.interface_unknowns > 0
            assert payload.strip_solves > 0
            assert payload.interface_solves > 0
        for key, payload in result.payloads.items():
            if key not in split_keys:
                assert payload.split_k == 1

    def test_trace_carries_split_aggregates(self, split):
        _result, recorder = split
        kinds = {e.kind for e in recorder.events()}
        assert {"strip_factor", "halo_exchange", "schur_solve"} <= kinds

    def test_split_off_is_bitwise_identical_to_default(self, unsplit):
        default = run_multiprocessing(root=ROOT, level=4, tol=TOL, processes=2)
        assert np.array_equal(default.combined, unsplit.combined)


# ----------------------------------------------------------------------
# the strip process team (shm halo exchange)
# ----------------------------------------------------------------------
class TestStripProcessTeam:
    GRID = Grid(ROOT, 4, 2)

    def run_team(self, fault_injections=None):
        problem = make_problem("rotating-cone")
        team = StripProcessTeam(fault_injections=fault_injections)
        result = subsolve(
            problem, self.GRID, TOL, 0.1, split_k=4, strip_executor=team,
        )
        return result, team.respawns

    def test_team_matches_serial_split_bitwise(self):
        problem = make_problem("rotating-cone")
        serial = subsolve(problem, self.GRID, TOL, 0.1, split_k=4)
        team_result, respawns = self.run_team()
        assert np.array_equal(team_result.solution, serial.solution)
        assert respawns == 0
        assert team_result.stats.strip_respawns == 0

    def test_crash_mid_strip_recovers_bitwise(self):
        """The chaos case: kill strip 1's worker mid-run; the fault
        ladder re-dispatches just that strip and the recovered run is
        bitwise identical to the fault-free split run."""
        fault_free, _ = self.run_team()
        chaotic, respawns = self.run_team(fault_injections={1: 5})
        assert respawns == 1
        assert chaotic.stats.strip_respawns == 1
        assert np.array_equal(chaotic.solution, fault_free.solution)

    def test_multiple_strip_crashes_recover(self):
        """Two different strips crash at different points; both are
        re-dispatched and the run still matches the fault-free one."""
        fault_free, _ = self.run_team()
        chaotic, respawns = self.run_team(fault_injections={0: 3, 2: 7})
        assert respawns == 2
        assert chaotic.stats.strip_respawns == 2
        assert np.array_equal(chaotic.solution, fault_free.solution)


# ----------------------------------------------------------------------
# the cost model side
# ----------------------------------------------------------------------
class TestSplitCostModel:
    @pytest.fixture(scope="class")
    def model(self):
        return CostModel.fit(synthetic_records(), root=2)

    def test_records_from_split_run_carry_split_k(self):
        result = run_multiprocessing(
            root=ROOT, level=4, tol=TOL, processes=2, split=2
        )
        records = records_from_run(result)
        split_keys = {key for key, _k in result.split_grids}
        tagged = {(r.l, r.m): r.split_k for r in records}
        for key in split_keys:
            assert tagged[key] == 2
        assert any(k == 1 for k in tagged.values())

    def test_fit_keeps_split_walls_out_of_calibration(self):
        from dataclasses import replace

        records = synthetic_records()

        def is_target(r):
            return r.l + r.m >= 6 and r.tol == 1.0e-3

        # corrupt the largest grids with inflated split walls — the fit
        # must behave exactly as if those records were absent
        poisoned = [
            replace(r, wall_seconds=r.wall_seconds * 7.0, split_k=4)
            if is_target(r) else r
            for r in records
        ]
        refit = CostModel.fit(poisoned, root=2)
        oracle = CostModel.fit(
            [r for r in records if not is_target(r)], root=2
        )
        assert refit.wall_coefficients == pytest.approx(
            oracle.wall_coefficients, rel=1e-9
        )
        poisoned_keys = {
            (r.l, r.m, r.tol) for r in poisoned if r.split_k != 1
        }
        assert poisoned_keys
        assert not poisoned_keys & set(refit.measured)

    def test_predict_split_seconds_shrinks_with_k(self, model):
        base = model.predict_seconds(8, 8, TOL)
        k2 = model.predict_split_seconds(8, 8, TOL, 2)
        k4 = model.predict_split_seconds(8, 8, TOL, 4)
        assert k2 < base
        assert k4 < k2
        assert k4 >= 0.25 * base

    def test_predict_split_seconds_k1_returns_base(self, model):
        assert model.predict_split_seconds(8, 8, TOL, 1) == pytest.approx(
            model.predict_seconds(8, 8, TOL)
        )

    def test_plan_split_triggers_only_when_makespan_drops(self, model):
        # one worker: splitting cannot help
        assert model.plan_split(12, TOL, n_workers=1) == {}
        # small grids: per-stage interface latency eats the gain, so
        # the model keeps LPT packing even with plenty of workers
        assert model.plan_split(8, TOL, n_workers=17) == {}
        # worker-rich regime on a big level: the head-of-line grid splits
        plan = model.plan_split(12, TOL, n_workers=25)
        assert plan
        for (l, m), k in plan.items():
            assert k in (2, 4)
            assert l + m == 12  # only top-diagonal (head-of-line) grids

    def test_plan_split_respects_min_gain(self, model):
        generous = model.plan_split(12, TOL, n_workers=25, min_gain=1.0)
        demanding = model.plan_split(12, TOL, n_workers=25, min_gain=100.0)
        assert demanding == {}
        assert len(generous) >= 1
