"""The executable experiment index."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.harness.experiments import EXPERIMENTS, get_experiment, render_index

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


class TestIndex:
    def test_all_paper_artifacts_covered(self):
        artifacts = {e.paper_artifact for e in EXPERIMENTS.values()}
        assert "Table 1" in artifacts
        for figure in range(1, 6):
            assert any(f"Figure {figure}" == a for a in artifacts), figure

    def test_ids_sequential(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 13)}

    def test_bench_targets_exist_on_disk(self):
        for experiment in EXPERIMENTS.values():
            assert (REPO_ROOT / experiment.bench_target).exists(), experiment.id

    def test_modules_importable(self):
        import importlib

        for experiment in EXPERIMENTS.values():
            for module in experiment.modules:
                importlib.import_module(module)

    def test_lookup_case_insensitive(self):
        assert get_experiment("e1").id == "E1"

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("E99")

    def test_render_index(self):
        text = render_index()
        assert "E1" in text and "E12" in text


class TestQuickRunners:
    @pytest.mark.parametrize("experiment_id", ["E1", "E2", "E3", "E6", "E7", "E9", "E12"])
    def test_quick_summaries_produce_text(self, experiment_id, synthetic_cost_model):
        experiment = get_experiment(experiment_id)
        assert experiment.quick is not None
        text = experiment.quick(synthetic_cost_model)
        assert isinstance(text, str) and len(text) > 50

    @pytest.mark.parametrize("experiment_id", ["E8", "E10", "E11"])
    def test_real_execution_experiments_defer_to_bench(self, experiment_id):
        assert get_experiment(experiment_id).quick is None
