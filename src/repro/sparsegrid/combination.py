"""Prolongation and the sparse-grid combination formula.

After the nested loop "the coarse approximations on the visited grids
are known and are prolongated onto the finest grid used in the
application to obtain a more accurate solution".  The combination
technique forms::

    u_c = sum_{l+m = L} P u_{l,m}  -  sum_{l+m = L-1} P u_{l,m}

where ``P`` prolongates (bilinear interpolation; the grid families are
nested, so coarse nodes map onto fine nodes exactly) each anisotropic
solution onto the target grid.

For large ``L`` the full isotropic target grid ``(L, L)`` would have
``(2**(root+L)+1)**2`` nodes — astronomically more memory than all the
component grids combined (their total is ``O(L * 2**(root+L))``).  The
driver therefore accepts a ``target_cap``: the combined solution is
represented on grid ``(min(L, cap), min(L, cap))``, with component
solutions prolongated up or *resampled* down (exact nodal subsampling —
the families are nested) as needed.  This preserves the structure and
cost profile of the original prolongation phase while keeping memory
bounded; the paper's own runs at ``level = 15`` cannot have materialized
a ``131073^2`` target either.
"""

from __future__ import annotations

import numpy as np

from .grid import Grid, combination_grids

__all__ = [
    "resample_1d",
    "resample_2d",
    "combination_coefficients",
    "combine",
]


def resample_1d(values: np.ndarray, levels_up: int, axis: int) -> np.ndarray:
    """Resample nodal data along ``axis`` by ``levels_up`` dyadic levels.

    Positive ``levels_up`` prolongates (linear interpolation, doubling
    the cell count per level); negative restricts by exact nodal
    subsampling (stride ``2**(-levels_up)``), which is injective on the
    nested node families.  ``levels_up == 0`` returns the input.
    """
    result = np.asarray(values, dtype=float)
    if levels_up == 0:
        return result
    if levels_up < 0:
        stride = 1 << (-levels_up)
        index = [slice(None)] * result.ndim
        index[axis] = slice(None, None, stride)
        return result[tuple(index)]
    for _ in range(levels_up):
        n = result.shape[axis]
        new_shape = list(result.shape)
        new_shape[axis] = 2 * n - 1
        out = np.empty(new_shape, dtype=float)
        even = [slice(None)] * result.ndim
        even[axis] = slice(0, None, 2)
        odd = [slice(None)] * result.ndim
        odd[axis] = slice(1, None, 2)
        lo = [slice(None)] * result.ndim
        lo[axis] = slice(0, n - 1)
        hi = [slice(None)] * result.ndim
        hi[axis] = slice(1, n)
        out[tuple(even)] = result
        out[tuple(odd)] = 0.5 * (result[tuple(lo)] + result[tuple(hi)])
        result = out
    return result


def resample_2d(values: np.ndarray, source: Grid, target: Grid) -> np.ndarray:
    """Map nodal data from ``source`` onto ``target`` (same root)."""
    if source.root != target.root:
        raise ValueError(
            f"grids must share a root: {source.root} != {target.root}"
        )
    expected = source.shape
    if values.shape != expected:
        raise ValueError(
            f"solution shape {values.shape} does not match {source} nodes {expected}"
        )
    out = resample_1d(values, target.l - source.l, axis=0)
    out = resample_1d(out, target.m - source.m, axis=1)
    return out


def combination_coefficients(level: int) -> dict[int, int]:
    """Combination coefficients by diagonal: ``{level: +1, level-1: -1}``."""
    coefficients = {level: 1}
    if level > 0:
        coefficients[level - 1] = -1
    return coefficients


def combine(
    solutions: dict[tuple[int, int], np.ndarray],
    root: int,
    level: int,
    target_cap: int | None = None,
) -> tuple[Grid, np.ndarray]:
    """Apply the combination formula to per-grid solutions.

    ``solutions`` maps ``(l, m)`` to the full nodal solution of that
    grid.  Every grid of both diagonals must be present.  Returns the
    target grid and the combined nodal array on it.
    """
    target_level = level if target_cap is None else min(level, target_cap)
    target = Grid(root, target_level, target_level)
    combined = np.zeros(target.shape)
    for grid, coefficient in combination_grids(root, level):
        key = (grid.l, grid.m)
        if key not in solutions:
            raise KeyError(f"missing solution for grid {key} at level {level}")
        combined += coefficient * resample_2d(solutions[key], grid, target)
    return target, combined
