"""Verification utilities and the headline convergence claims."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparsegrid import Grid, manufactured_problem, rotating_cone_problem
from repro.sparsegrid.verification import (
    ConvergenceStudy,
    combination_study,
    discrete_mass,
    error_norms,
    single_grid_study,
)


class TestErrorNorms:
    def test_zero_error(self):
        a = np.ones((4, 4))
        norms = error_norms(a, a)
        assert norms == {"max": 0.0, "l2": 0.0, "l1": 0.0}

    def test_norm_ordering(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(8, 8))
        norms = error_norms(a, np.zeros_like(a))
        assert norms["l1"] <= norms["l2"] <= norms["max"]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            error_norms(np.zeros((2, 2)), np.zeros((3, 3)))


class TestStudyBookkeeping:
    def test_orders_from_halving(self):
        study = ConvergenceStudy("synthetic", "max")
        study.add(1, 1.0, 0.0)
        study.add(2, 0.25, 0.0)  # order 2
        study.add(3, 0.125, 0.0)  # order 1
        assert study.rows[0].order is None
        assert study.rows[1].order == pytest.approx(2.0)
        assert study.rows[2].order == pytest.approx(1.0)
        assert study.observed_order == pytest.approx(1.5)

    def test_multi_level_steps(self):
        study = ConvergenceStudy("synthetic", "max")
        study.add(1, 1.0, 0.0)
        study.add(3, 0.25, 0.0)  # two steps, factor 4 => order 1
        assert study.rows[1].order == pytest.approx(1.0)

    def test_is_converging(self):
        study = ConvergenceStudy("synthetic", "max")
        for level, err in [(1, 1.0), (2, 0.6), (3, 0.7)]:
            study.add(level, err, 0.0)
        assert not study.is_converging()

    def test_order_requires_two_rows(self):
        study = ConvergenceStudy("synthetic", "max")
        study.add(1, 1.0, 0.0)
        with pytest.raises(ValueError):
            study.observed_order

    def test_render(self):
        study = ConvergenceStudy("synthetic", "max")
        study.add(1, 1.0, 0.1)
        study.add(2, 0.5, 0.2)
        text = study.render()
        assert "synthetic" in text and "order 1.00" in text


class TestNumericalOrders:
    """The 'good convergence rates' of the original developers."""

    @pytest.fixture(scope="class")
    def problem(self):
        return manufactured_problem(diffusion=0.05, t_end=0.25)

    def test_upwind_first_order(self, problem):
        study = single_grid_study(problem, levels=[1, 2, 3, 4], scheme="upwind")
        assert study.is_converging()
        assert 0.6 < study.observed_order < 1.5

    def test_central_second_order(self, problem):
        study = single_grid_study(problem, levels=[1, 2, 3, 4], scheme="central")
        assert study.is_converging()
        assert 1.5 < study.observed_order < 2.6

    def test_combination_converges(self, problem):
        study = combination_study(problem, levels=[1, 2, 3, 4])
        assert study.is_converging()
        assert study.observed_order > 0.5

    def test_requires_exact_solution(self):
        with pytest.raises(ValueError):
            single_grid_study(rotating_cone_problem(), levels=[1, 2])


class TestMass:
    def test_constant_field_mass(self):
        grid = Grid(2, 1, 1)
        values = np.full(grid.shape, 3.0)
        assert discrete_mass(values, grid) == pytest.approx(3.0)

    def test_shape_checked(self):
        with pytest.raises(ValueError):
            discrete_mass(np.zeros((3, 3)), Grid(2, 1, 1))

    def test_diffusion_preserves_mass_roughly(self):
        """Pure rotation+weak diffusion of a compactly supported blob:
        mass changes little over a short time."""
        from repro.sparsegrid import subsolve

        problem = rotating_cone_problem(diffusion=1e-4, t_end=0.1)
        grid = Grid(2, 3, 3)
        xx, yy = grid.meshgrid()
        m0 = discrete_mass(problem.initial(xx, yy), grid)
        result = subsolve(problem, grid, tol=1e-5)
        m1 = discrete_mass(result.solution, grid)
        assert abs(m1 - m0) / m0 < 0.35  # upwind diffusion loses some
