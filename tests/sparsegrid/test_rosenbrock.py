"""The ROS2 integrator: accuracy, adaptivity, counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparsegrid import Grid, manufactured_problem
from repro.sparsegrid.discretize import SpatialOperator
from repro.sparsegrid.linsolve import RosenbrockSystemSolver
from repro.sparsegrid.rosenbrock import GAMMA, Ros2Integrator


@pytest.fixture(scope="module")
def operator():
    return SpatialOperator(Grid(2, 2, 2), manufactured_problem(diffusion=0.02))


class TestSystemSolver:
    def test_solves_shifted_system(self, operator):
        solver = RosenbrockSystemSolver(operator.J, GAMMA)
        solver.prepare(0.01)
        rhs = np.ones(operator.n_interior)
        x = solver.solve(rhs)
        matrix = np.eye(operator.n_interior) - GAMMA * 0.01 * operator.J.toarray()
        assert np.allclose(matrix @ x, rhs, atol=1e-10)

    def test_factorization_cached_for_same_h(self, operator):
        solver = RosenbrockSystemSolver(operator.J, GAMMA)
        solver.prepare(0.01)
        solver.prepare(0.01)
        assert solver.factorizations == 1

    def test_refactorizes_on_h_change(self, operator):
        solver = RosenbrockSystemSolver(operator.J, GAMMA)
        solver.prepare(0.01)
        solver.prepare(0.02)
        assert solver.factorizations == 2
        assert solver.current_h == 0.02

    def test_solve_before_prepare_rejected(self, operator):
        solver = RosenbrockSystemSolver(operator.J, GAMMA)
        with pytest.raises(RuntimeError):
            solver.solve(np.ones(operator.n_interior))

    def test_invalid_h_rejected(self, operator):
        solver = RosenbrockSystemSolver(operator.J, GAMMA)
        with pytest.raises(ValueError):
            solver.prepare(0.0)

    def test_invalid_gamma_rejected(self, operator):
        with pytest.raises(ValueError):
            RosenbrockSystemSolver(operator.J, 0.0)

    def test_counters_track_solves(self, operator):
        solver = RosenbrockSystemSolver(operator.J, GAMMA)
        solver.prepare(0.01)
        solver.solve(np.ones(operator.n_interior))
        solver.solve(np.ones(operator.n_interior))
        assert solver.solves == 2
        assert solver.solve_seconds > 0
        assert solver.factor_seconds > 0


class TestIntegration:
    def solve_error(self, tol, level=2):
        problem = manufactured_problem(diffusion=0.02, t_end=0.5)
        grid = Grid(2, level, level)
        op = SpatialOperator(grid, problem)
        integrator = Ros2Integrator(op, tol)
        u, stats = integrator.integrate(op.initial_interior(), 0.0, 0.5)
        xx, yy = grid.interior_meshgrid()
        exact = problem.exact(xx, yy, 0.5).reshape(-1)
        return float(np.max(np.abs(u - exact))), stats

    def test_reaches_final_time_accurately(self):
        error, stats = self.solve_error(1e-4)
        # total error is dominated by the O(h) spatial scheme here;
        # the point is the integrator tracked the ODE solution
        assert error < 0.05
        assert stats.steps_accepted > 0

    def test_tighter_tolerance_takes_more_steps(self):
        _, loose = self.solve_error(1e-3)
        _, tight = self.solve_error(1e-5)
        assert tight.steps_accepted > loose.steps_accepted

    def test_temporal_error_controlled_by_tolerance(self):
        """Against a tol=1e-9 reference on the same grid, the temporal
        error must drop when the tolerance drops."""
        problem = manufactured_problem(diffusion=0.02, t_end=0.5)
        grid = Grid(2, 2, 2)

        def run(tol):
            op = SpatialOperator(grid, problem)
            integrator = Ros2Integrator(op, tol)
            u, _ = integrator.integrate(op.initial_interior(), 0.0, 0.5)
            return u

        reference = run(1e-9)
        err_loose = np.max(np.abs(run(3e-3) - reference))
        err_tight = np.max(np.abs(run(1e-5) - reference))
        assert err_tight < err_loose
        assert err_tight < 1e-4

    def test_step_statistics_populated(self):
        _, stats = self.solve_error(1e-4)
        assert stats.solves == 2 * (stats.steps_accepted + stats.steps_rejected)
        assert stats.factorizations >= 1
        assert stats.factorizations <= stats.steps_total
        assert 0 < stats.min_h <= stats.max_h
        assert stats.final_h > 0
        assert stats.total_seconds > 0

    def test_step_history_recording(self):
        problem = manufactured_problem(t_end=0.25)
        op = SpatialOperator(Grid(2, 1, 1), problem)
        integrator = Ros2Integrator(op, 1e-4, record_history=True)
        _, stats = integrator.integrate(op.initial_interior(), 0.0, 0.25)
        assert len(stats.h_history) == stats.steps_accepted
        assert abs(sum(stats.h_history) - 0.25) < 1e-9

    def test_fixed_initial_step_honoured(self):
        problem = manufactured_problem(t_end=0.25)
        op = SpatialOperator(Grid(2, 1, 1), problem)
        integrator = Ros2Integrator(op, 1e-4, h0=1e-3, record_history=True)
        _, stats = integrator.integrate(op.initial_interior(), 0.0, 0.25)
        assert stats.h_history[0] == pytest.approx(1e-3)

    def test_h_max_cap_respected(self):
        problem = manufactured_problem(t_end=0.25)
        op = SpatialOperator(Grid(2, 1, 1), problem)
        integrator = Ros2Integrator(op, 1e-2, h_max=0.01, record_history=True)
        _, stats = integrator.integrate(op.initial_interior(), 0.0, 0.25)
        assert max(stats.h_history) <= 0.01 + 1e-12

    def test_invalid_time_interval_rejected(self):
        problem = manufactured_problem()
        op = SpatialOperator(Grid(2, 1, 1), problem)
        integrator = Ros2Integrator(op, 1e-3)
        with pytest.raises(ValueError):
            integrator.integrate(op.initial_interior(), 1.0, 0.5)

    def test_invalid_tolerance_rejected(self):
        problem = manufactured_problem()
        op = SpatialOperator(Grid(2, 1, 1), problem)
        with pytest.raises(ValueError):
            Ros2Integrator(op, 0.0)

    def test_deterministic_across_runs(self):
        """Identical inputs produce bitwise-identical trajectories —
        the property behind 'the results are exactly the same'."""
        problem = manufactured_problem(t_end=0.25)

        def run():
            op = SpatialOperator(Grid(2, 2, 1), problem)
            integrator = Ros2Integrator(op, 1e-4)
            u, _ = integrator.integrate(op.initial_interior(), 0.0, 0.25)
            return u

        assert np.array_equal(run(), run())

    def test_step_holding_limits_factorizations(self):
        """The controller holds h when the change would not pay for a
        refactorization: far fewer factorizations than steps."""
        _, stats = self.solve_error(1e-5, level=3)
        assert stats.steps_accepted > 30
        assert stats.factorizations < stats.steps_accepted / 3
