"""Real multi-core execution via ``multiprocessing`` — the GIL workaround.

The coordination-faithful configurations in :mod:`mainprog` demonstrate
the protocol; this module is the measurement configuration for *actual*
speedup on the present machine: the same grids, the same ``subsolve``,
fanned out over a process pool, with the same prolongation at the end.
Because ``subsolve`` touches only its own grid (the paper's cut
criterion), the fan-out is embarrassingly parallel and results are
bitwise identical to the sequential loop.

The warm path (the defaults) removes the seed's coordination-layer
overhead in three ways:

* the pool is the process-wide **persistent** pool of :mod:`pool` —
  repeat runs find warm workers instead of re-forking;
* workers serve operators and LU factors from their process-local
  **cache** (:mod:`repro.sparsegrid.cache`) instead of re-assembling;
* jobs are dispatched **longest-predicted-first** through
  ``imap_unordered`` with chunksize 1 — LPT scheduling — instead of
  ``pool.map``'s static contiguous chunks, which lose makespan on the
  geometrically-skewed grid family (the biggest diagonal sits at the
  *end* of the paper's loop order).

``dispatch="static"``, ``warm_pool=False`` and ``operator_cache=False``
reproduce the seed behaviour exactly, so the benchmarks can measure the
cold/warm gap.  Every configuration is bitwise identical in its output.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sparsegrid.combination import combine
from repro.sparsegrid.grid import Grid, nested_loop_grids

from .pool import acquire_pool
from .worker import (
    SubsolveJobSpec,
    SubsolvePayload,
    execute_job,
    execute_job_uncached,
)

__all__ = [
    "MultiprocessingResult",
    "predicted_spec_seconds",
    "order_longest_first",
    "run_multiprocessing",
]

DISPATCH_POLICIES = ("longest-first", "static")


def predicted_spec_seconds(spec: SubsolveJobSpec, cost_model=None) -> float:
    """Predicted ``subsolve`` cost of one job, for dispatch ordering.

    With a calibrated :class:`~repro.perf.costmodel.CostModel` the
    prediction is its fitted wall time.  Without one, a structural
    proxy: the interior unknown count.  ``n_interior`` grows
    geometrically with the diagonal ``l+m`` (separating the two
    diagonals of the family by ~4x) and, within a diagonal, peaks at
    the square grid — matching the measured per-grid profile, where
    assembly, factorization bandwidth and per-solve cost all scale with
    the unknowns.
    """
    if cost_model is not None:
        return float(cost_model.predict_seconds(spec.l, spec.m, spec.tol))
    return float(spec.grid.n_interior)


def order_longest_first(
    specs: list[SubsolveJobSpec], cost_model=None
) -> list[SubsolveJobSpec]:
    """Longest-predicted-first (LPT) dispatch order; ties keep loop
    order (the sort is stable)."""
    return sorted(
        specs,
        key=lambda s: predicted_spec_seconds(s, cost_model),
        reverse=True,
    )


@dataclass
class MultiprocessingResult:
    root: int
    level: int
    tol: float
    processes: int
    payloads: dict[tuple[int, int], SubsolvePayload]
    target_grid: Grid
    combined: np.ndarray
    total_seconds: float
    pool_seconds: float
    # ------------------------------------------------------------------
    # warm-path observability
    # ------------------------------------------------------------------
    #: dispatch policy used ("longest-first" or "static")
    dispatch: str = "static"
    #: the shared pool pre-existed this call (warm workers)
    warm_pool: bool = False
    #: seconds spent forking a pool inside this call (0.0 when warm)
    pool_cold_start_seconds: float = 0.0
    #: grids in the order jobs were handed to the pool
    dispatch_order: tuple[tuple[int, int], ...] = ()
    #: grids in the order their results arrived
    completion_order: tuple[tuple[int, int], ...] = ()

    @property
    def n_workers(self) -> int:
        return len(self.payloads)

    @property
    def operator_cache_hits(self) -> int:
        return sum(1 for p in self.payloads.values() if p.operator_cache_hit)

    @property
    def operator_cache_misses(self) -> int:
        return len(self.payloads) - self.operator_cache_hits

    @property
    def operator_cache_hit_ratio(self) -> float:
        if not self.payloads:
            return 0.0
        return self.operator_cache_hits / len(self.payloads)

    @property
    def factor_cache_hits(self) -> int:
        return sum(p.factor_cache_hits for p in self.payloads.values())

    @property
    def factor_reuse_ratio(self) -> float:
        """Pooled over all grids: prepares served without a fresh LU."""
        prepares = sum(p.prepare_calls for p in self.payloads.values())
        if prepares == 0:
            return 0.0
        reused = sum(p.factor_reuse_hits for p in self.payloads.values())
        return reused / prepares


def run_multiprocessing(
    root: int = 2,
    level: int = 2,
    tol: float = 1.0e-3,
    problem_name: str = "rotating-cone",
    problem_kwargs: Optional[dict] = None,
    *,
    processes: Optional[int] = None,
    t_end: Optional[float] = None,
    scheme: str = "upwind",
    target_cap: int | None = 8,
    dispatch: str = "longest-first",
    cost_model=None,
    warm_pool: bool = True,
    operator_cache: bool = True,
) -> MultiprocessingResult:
    """Run the whole application with a process pool over the grids.

    The defaults are the warm path; ``warm_pool=False`` forks a
    throwaway pool (the seed behaviour) and ``operator_cache=False``
    disables worker-side operator/factor reuse, for cold measurements.
    """
    if dispatch not in DISPATCH_POLICIES:
        raise ValueError(
            f"unknown dispatch policy {dispatch!r}; choose from {DISPATCH_POLICIES}"
        )
    t_start = time.perf_counter()
    kw_pairs = tuple(sorted((problem_kwargs or {}).items()))
    specs = [
        SubsolveJobSpec(
            problem_name=problem_name,
            root=root,
            l=g.l,
            m=g.m,
            tol=tol,
            t_end=t_end,
            scheme=scheme,
            problem_kwargs=kw_pairs,
        )
        for g in nested_loop_grids(root, level)
    ]
    n_proc = processes or min(len(specs), multiprocessing.cpu_count())
    job = execute_job if operator_cache else execute_job_uncached
    if dispatch == "longest-first":
        ordered = order_longest_first(specs, cost_model)
    else:
        ordered = specs

    t_pool = time.perf_counter()
    if warm_pool:
        pool, was_warm = acquire_pool(n_proc)
        cold_start = 0.0 if was_warm else pool.cold_start_seconds
        if dispatch == "static":
            payload_list = pool.map_static(job, ordered)
        else:
            payload_list = list(pool.imap_unordered(job, ordered))
        n_proc = pool.processes
    else:
        was_warm = False
        t_fork = time.perf_counter()
        fresh = multiprocessing.get_context("fork").Pool(n_proc)
        cold_start = time.perf_counter() - t_fork
        try:
            if dispatch == "static":
                payload_list = fresh.map(job, ordered)
            else:
                payload_list = list(fresh.imap_unordered(job, ordered, 1))
        finally:
            fresh.close()
            fresh.join()
    pool_seconds = time.perf_counter() - t_pool

    payloads = {(p.l, p.m): p for p in payload_list}
    solutions = {key: p.solution for key, p in payloads.items()}
    target_grid, combined = combine(solutions, root, level, target_cap=target_cap)
    return MultiprocessingResult(
        root=root,
        level=level,
        tol=tol,
        processes=n_proc,
        payloads=payloads,
        target_grid=target_grid,
        combined=combined,
        total_seconds=time.perf_counter() - t_start,
        pool_seconds=pool_seconds,
        dispatch=dispatch,
        warm_pool=was_warm,
        pool_cold_start_seconds=cold_start,
        dispatch_order=tuple((s.l, s.m) for s in ordered),
        completion_order=tuple((p.l, p.m) for p in payload_list),
    )
